(** Differential EM analysis engine: the Pearson-correlation
    distinguisher of Eq. (1), in three shapes matched to the paper's
    plots and to streaming enumeration of large hypothesis spaces.

    {b Determinism.}  All rankings are selected under the strict total
    order {!compare_scored} (higher score first, exact ties broken by
    the smaller guess value), so the returned list is a pure function of
    the candidate {e multiset} — reordering the candidate sequence, or
    sweeping it in parallel chunks, yields bit-identical output.

    {b Parallelism.}  The sweeps accept [?jobs] (default
    {!Parallel.default_jobs}, i.e. 1): candidates are chunked across a
    fixed-size domain pool, each domain keeps a local top-k, and the
    partial top-ks are merged in chunk order.  Per-column trace
    statistics are computed once per sweep and shared read-only.

    {b Execution context.}  Every entry point also accepts [?ctx]
    ({!Ctx.t}), which bundles [jobs], the {!Distinguisher.selection}
    scoring the sweep and an observability context; an explicit
    [?jobs]/[?backend] argument overrides the corresponding [ctx] field
    ([?backend] is the deprecated Pearson-typed shim — see
    {!Distinguisher}).  Instrumentation is observationally transparent:
    with any sink attached the returned rankings are bit-identical to
    the uninstrumented path at every [jobs].

    {b Distinguisher dispatch.}  The two Pearson selections run the
    historical scalar / fused-batched arms byte for byte (parity is
    test-pinned).  A [Profiled] selection scores guesses by template
    log-likelihood instead of correlation: per (part, trace) the
    class-conditional scores are computed once from the
    {!Profile.store}'s points of interest, and each guess sums the
    entry of its predicted Hamming class, averaged over traces.  The
    correlation-only stages ({!rank_absolute}, {!corr_time},
    calibration) run on {!Ctx.kernel} under a profiled selection; the
    sequential testers ({!rank_until} and friends) reject it with
    [Invalid_argument]. *)

type scored = { guess : int; corr : float }

val compare_scored : scored -> scored -> int
(** Strict total order: descending score, ties by ascending guess. *)

val rank_scores :
  ?ctx:Ctx.t ->
  ?jobs:int ->
  score:(int -> float) ->
  top:int ->
  int Seq.t ->
  scored list
(** Generic deterministic top-[top] selection of [candidates] under an
    arbitrary scoring function (which must be pure and safe to call from
    any domain).  The building block of {!rank}, {!rank_absolute} and
    {!Template.rank}. *)

val rank_block_scores :
  ?ctx:Ctx.t ->
  ?jobs:int ->
  score_block:(int array -> float array) ->
  top:int ->
  int Seq.t ->
  scored list
(** Like {!rank_scores} but the scoring function receives a whole work
    chunk of candidates at once and returns their scores positionally —
    the entry point for batched (hypothesis-block) distinguishers.
    Candidates enter the top-k in chunk order, so the selection is
    bit-identical to [rank_scores] over the pointwise scores. *)

val rank :
  ?ctx:Ctx.t ->
  ?jobs:int ->
  ?backend:Stats.Pearson.Batch.backend ->
  traces:float array array ->
  parts:(int * 'k Hypothesis.Model.t) list ->
  known:'k array ->
  top:int ->
  int Seq.t ->
  scored list
(** [rank ~traces ~parts ~known ~top candidates] scores every candidate
    guess by the sum over [parts] of the absolute correlation between the
    modelled leakage [HW (model guess known.(d))] and the trace column at
    the part's sample index, streaming the candidate sequence with
    O(top) memory per domain.  Returns the [top] best, sorted by
    {!compare_scored}.  A part's {!Hypothesis.Model.t} predicts the
    integer intermediate of a trace whose known operand is [y].

    [backend] (default {!Stats.Pearson.Batch.default_backend}, i.e. the
    batched kernel unless [FD_PEARSON=scalar]) selects between the
    historical per-guess [hyp_vector]/[corr_with] loop and the fused
    kernel ({!Stats.Pearson.Batch.Fused}) that generates hypothesis
    intermediates on the fly inside register tiles — no per-guess
    vectors, no [G x D] block.  Consecutive parts sharing one model
    value (physical equality) are scored from a single generated
    stream, and {!Hypothesis.Model.Split} models additionally hoist the
    known-operand digest into a per-sweep prep table.  Both backends
    produce bit-identical scores, hence bit-identical rankings, at every
    [jobs]. *)

val rank_absolute :
  ?ctx:Ctx.t ->
  ?jobs:int ->
  ?backend:Stats.Pearson.Batch.backend ->
  traces:float array array ->
  parts:(int * 'k Hypothesis.Model.t) list ->
  known:'k array ->
  top:int ->
  alpha:float ->
  baseline:float ->
  int Seq.t ->
  scored list
(** Like {!rank} but with a calibrated absolute-level distinguisher: each
    guess is scored by the negative mean squared residual between the
    measured samples and [baseline + alpha * HW(model guess y)].  Unlike
    Pearson correlation this is {e not} invariant under constant shifts
    of the predicted Hamming weight, which is what disambiguates exponent
    hypotheses that differ by a per-trace constant (see
    {!Recover.attack_exponent}).  [alpha] and [baseline] come from
    {!Calibrate.estimate} — i.e. from the same traces, not from a
    profiling device.  [backend] dispatches like {!rank} (the batched
    arm keeps one running error per guess row, same additions in the
    same order — bit-identical scores). *)

(** {1 Sequential early-stopping sweeps}

    The adaptive campaign engine: the same distinguisher statistics,
    accumulated batch by batch, with a {!Sequential.Decision} tester
    looking at the top-1 vs runner-up correlation gap after each batch
    and stopping the sweep as soon as the leader separates at the
    requested confidence.

    {b Determinism.}  A sweep fed to exhaustion scores bit-identically
    to the fixed-budget sweeps, and at {e every intermediate look} the
    Scalar and Batched backends agree bitwise (same additions into
    per-candidate accumulators in global trace order, same finalisation
    epilogue), candidate-chunk parallelism touches disjoint state, and
    all decisions run on the owner domain — so stop points, winners and
    the returned ranking are bit-identical across [jobs], backends and
    prefetch settings. *)

(** Incremental per-candidate scoring state: a chunked sweep whose
    accumulators persist across batch folds and can be finalised at any
    look without a reset.  Used by {!rank_until} /
    {!Stream.rank_until} and by [Fullkey]'s per-coefficient decision
    sweeps. *)
module Sweep : sig
  type 'k t

  val create :
    backend:Stats.Pearson.Batch.backend ->
    parts:'k Hypothesis.Model.t list ->
    int array ->
    'k t
  (** One sweep over a fixed candidate array (at least two candidates —
      a runner-up must exist) and a list of part models.  Parts may live
      on different views, so each supplies its own known operands at
      fold time. *)

  val n : 'k t -> int
  (** Traces folded so far. *)

  val fold : ?jobs:int -> 'k t -> (float array * 'k array) array -> unit
  (** One batch: element [j] is part [j]'s (column segment, known
      operands), all of one equal length.  Raises [Invalid_argument] on
      a ragged or mis-sized batch. *)

  val scores : ?jobs:int -> 'k t -> float array
  (** Per-candidate sum over parts of |r| over everything folded so
      far, with the fixed-budget sweeps' exact epilogue. *)

  val ranking : ?jobs:int -> 'k t -> top:int -> scored list
  (** Top-[top] of {!scores} under {!compare_scored}. *)

  val leaders : ?jobs:int -> 'k t -> Sequential.Campaign.leaders
  (** Top-1 vs runner-up under {!compare_scored}, reported as mean |r|
      over parts (so the statistic lives in [0,1] like a single
      correlation — what the Fisher-z decision rules expect). *)
end

type until = {
  ranking : scored list;  (** the ranking at the stopping point *)
  stop : Sequential.Decision.stop option;
      (** [None]: the budget ran out before the leader separated *)
  n_traces : int;  (** traces actually consumed *)
  looks : int;
}

val rank_until :
  ?ctx:Ctx.t ->
  ?jobs:int ->
  ?backend:Stats.Pearson.Batch.backend ->
  spec:Sequential.Decision.spec ->
  ?batch:int ->
  traces:float array array ->
  parts:(int * 'k Hypothesis.Model.t) list ->
  known:'k array ->
  top:int ->
  int Seq.t ->
  until
(** In-memory adaptive {!rank}: traces are fed in batches of [?batch]
    (default 64) and the sweep stops as soon as the tester fires.  Fed
    to exhaustion (tester never fires) the ranking equals {!rank}'s
    bitwise.  This is how [Assess.Metrics] measures traces-to-decision
    on an experiment already held in memory. *)

(** Streaming engine over an on-disk {!Tracestore} campaign: the same
    distinguishers without ever materialising the corpus.  Shards are
    decoded on the domain pool (one shard per work unit, so peak memory
    is bounded by [jobs] decoded shards plus the extracted columns /
    accumulators) and combined in shard order.

    {b Determinism.}  Column extraction is arithmetic-free and both
    rank backends replay the in-memory sweep's additions in global trace
    order across shard segments, so {!Stream.rank} is {e bit-identical}
    to the in-memory {!rank} over the same traces, at every [jobs] and
    backend, with prefetch on or off.  {!Stream.evolution} merges
    {!Stats.Welford.Cov} accumulators in shard order (Chan's formula):
    deterministic at every [jobs], and equal to a prefix rescan up to
    floating-point reassociation (1e-9 in the property tests).

    {b Corrupt shards.}  All entry points raise [Failure] if the store's
    sample width does not match its ring size.  A shard the reader
    cannot produce — its own [`Fail] policy raised, or its [`Skip]
    policy returned [None] — is a {e data error} by default
    ([?on_corrupt] = [`Fail]): the sweep fails naming the shard index
    rather than silently analysing a shrunken campaign.  Passing
    [~on_corrupt:`Skip] drops such shards from the analysis; each drop
    is counted on the ["dema.shards_skipped"] observability counter
    (emitted only when non-zero).

    {b Prefetch.}  With [jobs = 1] and [?prefetch] [true] (the default),
    a helper domain reads and decodes shard [i+1] while shard [i] is
    being consumed, overlapping IO/decode with scoring; results are
    still consumed strictly in shard order.  With [jobs > 1] the domain
    pool already overlaps shards and the flag is ignored. *)
module Stream : sig
  (** How the stream turns a store's records back into traces.  The
      [check] half validates the store's meta (ring size vs sample
      width) before any shard is read; the [decode] half rebuilds one
      trace.  Both run on worker domains and must be pure.  Every entry
      point defaults to {!falcon_codec}, so existing callers are
      bitwise unchanged; non-FALCON {!Target}s supply their own. *)
  type codec = {
    check : Tracestore.meta -> unit;
    decode : Tracestore.meta -> Tracestore.record -> Leakage.trace;
  }

  val falcon_codec : codec
  (** The historical path: width must equal
      [n * Leakage.events_per_coeff], records decode through
      {!Leakage.of_record} (FFT(c) recomputed from salt+message). *)

  val map_shards :
    ?ctx:Ctx.t ->
    ?jobs:int ->
    ?on_corrupt:[ `Fail | `Skip ] ->
    ?prefetch:bool ->
    ?codec:codec ->
    Tracestore.Reader.t ->
    (int -> Leakage.trace array -> 'a) ->
    'a list
  (** Decode every shard into full traces on the domain pool and return
      per-shard results in shard order.  Raises [Failure] naming the
      shard on an unreadable shard unless [~on_corrupt:`Skip]. *)

  val extract :
    ?ctx:Ctx.t ->
    ?jobs:int ->
    ?on_corrupt:[ `Fail | `Skip ] ->
    ?prefetch:bool ->
    ?codec:codec ->
    Tracestore.Reader.t ->
    samples:int list ->
    known:(Leakage.trace -> 'k) ->
    float array array * 'k array
  (** One streaming pass assembling the narrow [D x |samples|] column
      matrix and the known-operand array, in global trace order. *)

  val rank :
    ?ctx:Ctx.t ->
    ?jobs:int ->
    ?backend:Stats.Pearson.Batch.backend ->
    ?on_corrupt:[ `Fail | `Skip ] ->
    ?prefetch:bool ->
    ?codec:codec ->
    Tracestore.Reader.t ->
    parts:(int * 'k Hypothesis.Model.t) list ->
    known:(Leakage.trace -> 'k) ->
    top:int ->
    int Seq.t ->
    scored list
  (** Store-backed {!rank}: part sample indices are {e absolute} trace
      sample positions (e.g. from [Leakage.sample_of]); [known] maps a
      trace to the operand fed to the part models.  The campaign is
      never concatenated: each shard contributes per-part column
      segments that both backends score in shard order with running
      accumulators, finalised against whole-campaign column moments —
      bit-identical to the in-memory {!rank} on the extracted corpus. *)

  (** Pull-based shard feed for adaptive campaigns. *)
  type feed = {
    next : unit -> Leakage.trace array option;
        (** next non-empty decoded shard in shard order, truncated at
            the cap; [None] once the campaign (or the cap) is exhausted *)
    close : unit -> unit;
        (** join any in-flight decode; call when abandoning the feed
            early (idempotent, [Fun.protect ~finally] material) *)
    total : int;  (** the capped campaign budget the feed will deliver *)
    skipped : unit -> int;  (** corrupt shards dropped so far *)
  }

  val shard_feed :
    ?on_corrupt:[ `Fail | `Skip ] ->
    ?prefetch:bool ->
    ?codec:codec ->
    ?max_traces:int ->
    Tracestore.Reader.t ->
    feed
  (** Decode shards strictly in shard order, one pull at a time, with
      one decode kept in flight on a helper domain when [?prefetch]
      (the default).  The delivered trace sequence is independent of
      [prefetch].  Unpulled shards are never decoded — the property
      adaptive campaigns stop early on.  Raises like {!map_shards} on
      corrupt shards under [`Fail]. *)

  val rank_until :
    ?ctx:Ctx.t ->
    ?jobs:int ->
    ?backend:Stats.Pearson.Batch.backend ->
    ?on_corrupt:[ `Fail | `Skip ] ->
    ?prefetch:bool ->
    ?codec:codec ->
    spec:Sequential.Decision.spec ->
    ?max_traces:int ->
    Tracestore.Reader.t ->
    parts:(int * 'k Hypothesis.Model.t) list ->
    known:(Leakage.trace -> 'k) ->
    top:int ->
    int Seq.t ->
    until
  (** Store-backed adaptive {!rank}: shards are decoded strictly in
      shard order, one at a time (with one decode kept in flight when
      [?prefetch], the default), fed to an incremental sweep, and the
      pull stops at the stopping point — unread shards are never
      decoded.  [?max_traces] caps the campaign (the budget an
      equivalent fixed run would use; also the baseline for the
      [seq.traces_saved] counter).  Batches are shard-sized, so looks
      land on shard boundaries; fed to exhaustion the ranking equals
      {!Stream.rank}'s bitwise.  Corrupt-shard policy as above
      ([`Skip] drops the shard from the campaign and counts it). *)

  val evolution :
    ?ctx:Ctx.t ->
    ?jobs:int ->
    ?on_corrupt:[ `Fail | `Skip ] ->
    ?prefetch:bool ->
    ?codec:codec ->
    Tracestore.Reader.t ->
    sample:int ->
    model:(int -> 'k -> int) ->
    known:(Leakage.trace -> 'k) ->
    guess:int ->
    (int * float) list
  (** Correlation-vs-trace-count checkpoints, one per shard boundary
      (Fig. 4 e-h at campaign scale): running accumulators instead of
      prefix rescans.  Raises [Failure] on a store holding no traces —
      an empty campaign is a data error, not an empty evolution. *)
end

val corr_time :
  ?ctx:Ctx.t ->
  ?backend:Stats.Pearson.Batch.backend ->
  traces:float array array ->
  model:(int -> 'k -> int) ->
  known:'k array ->
  guesses:int array ->
  unit ->
  float array array
(** Correlation-versus-time matrix (one row per guess) — Fig. 4 (a-d).
    [backend] selects the per-guess {!Stats.Pearson.corr_matrix} path or
    the blocked {!Stats.Pearson.Batch.corr_matrix_blocked} kernel; the
    matrices are bit-identical. *)

val evolution :
  traces:float array array ->
  sample:int ->
  model:(int -> 'k -> int) ->
  known:'k array ->
  guess:int ->
  step:int ->
  (int * float) list
(** Correlation at [sample] as a function of the trace count —
    Fig. 4 (e-h). *)

val hyp_vector : model:(int -> 'k -> int) -> known:'k array -> int -> float array
(** The modelled leakage vector (Hamming weights as floats) of one guess. *)

val backend_name : Distinguisher.selection -> string
(** {!Distinguisher.name} — kept here for the CLIs' report vocabulary. *)

val distinguisher : Distinguisher.selection -> (module Distinguisher.S)
(** The registered streaming instances behind the {!Distinguisher.S}
    seam: the Pearson selections wrap the incremental {!Sweep} (so
    scoring through the interface is bit-identical to the fixed-budget
    Pearson paths — parity-tested), and [Profiled] accumulates template
    log-likelihoods from its store's POI columns.  The Pearson instances
    require at least two guesses ({!Sweep.create}'s contract). *)
