(** Profiled Gaussian templates over points of interest.

    The GALACTICS BLISS attack (arXiv 2109.09461) breaks countermeasures
    that defeat unprofiled CPA by {e profiling}: on a cloned device with
    a known key, record traces, estimate one multivariate-Gaussian
    template per leakage class of each targeted intermediate, and score
    attack traces by class log-likelihood instead of correlation.  This
    module is that pipeline's math and persistence layer — it knows
    nothing about schemes, contexts or sweeps (see {!Distinguisher} and
    [Dema] for the scoring seam it plugs into).

    {b Classes.}  A class is the predicted leakage level of an
    intermediate — the Hamming weight (or Hamming distance) that the
    unprofiled distinguisher would correlate against — so the same
    {!Hypothesis.Model} part sets drive both the unprofiled and the
    profiled attack, and profiling truth is just the model applied to
    the known operand and the {e true} guess.

    {b Windows.}  Trace layouts here are periodic (one soft-float
    multiply every [Leakage.events_per_mul] samples, one coefficient
    every [Leakage.events_per_coeff]); a template is keyed by the
    {e window-relative} offset of the sample it scores and stores its
    points of interest window-relatively too.  One store therefore
    serves every unit of a campaign: a part at absolute sample [s] uses
    the template at offset [s mod window] translated to window base
    [s - s mod window].

    {b Pipeline} (two passes over the profiling set, streamable):
    pass 1 accumulates per-(template, class) means and variances over
    the whole window and selects the points of interest by SNR
    (between-class variance of the class means over pooled within-class
    variance — the one-way ANOVA form of the Welch t-test pass);
    pass 2 accumulates the pooled within-class covariance at the POIs.
    Finalisation runs Fisher LDA — whiten the pooled covariance
    (cyclic-Jacobi eigendecomposition), diagonalise the between-class
    scatter in the whitened basis, keep the top [ndim] directions — so
    the projected pooled covariance is the identity and the
    log-likelihood of class [c] reduces to
    [-0.5 * ||W^T (x - grand) - pm_c||^2] plus a constant.

    All of it is deterministic: fixed sweep orders, fixed
    tie-breaking, no RNG. *)

type spec = {
  window : int;  (** periodic trace layout length the templates key on *)
  nclass : int;  (** leakage classes (Hamming levels), e.g. 65 for 64-bit words *)
  npoi : int;  (** points of interest per template (clamped to [window]) *)
  ndim : int;  (** LDA output dimensions (clamped to [npoi] and classes-1) *)
}

val default_spec : window:int -> spec
(** [nclass = 65], [npoi = 8], [ndim = 3]. *)

type template = {
  target : int;  (** window-relative sample this template scores *)
  pois : int array;  (** window-relative points of interest, ascending *)
  counts : int array;  (** per-class profiling observations, length [nclass] *)
  grand : float array;  (** grand mean at the POIs *)
  means : float array array;  (** per-class POI means; absent classes hold [grand] *)
  proj : float array array;  (** [npoi x r] LDA projection [W] *)
  pmeans : float array array;  (** per-class projected means [W^T (mean_c - grand)] *)
}

type store = {
  window : int;
  nclass : int;
  trained : int;  (** pass-1 observations the store was built from *)
  templates : template array;  (** ascending by [target] *)
}

(** {1 Training} *)

val train :
  spec ->
  targets:int array ->
  ((base:int -> target:int -> cls:int -> float array -> unit) -> unit) ->
  store
(** [train spec ~targets feed] builds one template per distinct window
    offset in [targets].  [feed add] is called exactly twice (pass 1
    then pass 2) and must replay the same observations; each [add]
    records that the trace [samples] (full row) contains, at window base
    [base], an intermediate of class [cls] for the template at
    window-relative offset [target].  Streaming-friendly: nothing is
    retained across observations but fixed-size moment accumulators.

    Raises [Invalid_argument] on malformed specs, out-of-range [cls],
    unknown [target] or a window overrunning the trace, and [Failure]
    when a template ends with fewer than two observed classes (a
    class-constant intermediate cannot be profiled). *)

val pooled_covariance :
  nclass:int -> classes:int array -> float array array -> float array array
(** [pooled_covariance ~nclass ~classes rows] is the pooled
    within-class covariance of the row vectors (row [i] belongs to class
    [classes.(i)]): class means subtracted, outer products summed,
    normalised by [n - observed_classes].  The closed form the streaming
    pass 2 accumulates; exposed for the property tests (symmetric PSD on
    any profiling set). *)

val eigenvalues : float array array -> float array
(** Eigenvalues of a symmetric matrix (cyclic Jacobi), descending.
    Deterministic; exposed for the PSD property tests. *)

(** {1 Scoring} *)

type point = {
  tpl : template;
  abs_pois : int array;  (** POIs translated to absolute trace samples *)
}

val covers : store -> sample:int -> bool

val point : store -> sample:int -> point
(** Resolve the template scoring absolute sample [sample].  Raises
    [Failure] naming the offset when the store holds no template for
    [sample mod window] — profiled attacks over un-profiled samples are
    a configuration error, not a silent fallback. *)

val class_scores : store -> point -> get:(int -> float) -> float array
(** Per-class log-likelihood scores (up to one shared constant) of one
    trace, reading absolute sample [j] through [get j].  Classes never
    observed in profiling score as their nearest observed class minus a
    [0.5 * distance^2] penalty, so a rare-but-legal class degrades
    smoothly instead of vetoing a candidate outright. *)

val class_scores_vec : store -> template -> float array -> float array
(** {!class_scores} on a pre-gathered POI vector (values at
    [template.pois], in order) — the form streaming folds use when the
    POI columns are already extracted. *)

(** {1 Persistence}

    Same discipline as the [lib/tracestore] shards: versioned magic,
    every declared length validated against the bytes remaining before
    anything is allocated, and a trailing CRC-32 over the payload so
    truncation or corruption yields a descriptive [Failure] naming the
    offending field and byte offset. *)

val magic : string

val encode : store -> string
val decode : string -> store
(** Raises [Failure] on malformed input. *)

val save : string -> store -> unit
val load : string -> store
(** [save]/[load] wrap {!encode}/{!decode} in file IO; [load] raises
    [Failure] on malformed content and [Sys_error] on IO failure. *)

val describe : store -> string
(** One-line human summary (window, templates, classes, training size). *)
