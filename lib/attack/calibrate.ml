let lo32 y = Int64.to_int (Int64.logand y 0xFFFFFFFFL)
let hi32 y = Int64.to_int (Int64.shift_right_logical y 32)

let estimate_points ~traces ~known points =
  let pts = ref [] in
  let add (sample, word_of) =
    Array.iteri
      (fun i t ->
        let hw = float_of_int (Bitops.popcount (word_of known.(i))) in
        pts := (hw, t.(sample)) :: !pts)
      traces
  in
  List.iter add points;
  let n = float_of_int (List.length !pts) in
  let sx = ref 0. and sy = ref 0. and sxx = ref 0. and sxy = ref 0. in
  List.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    !pts;
  let denom = !sxx -. (!sx *. !sx /. n) in
  if denom <= 0. then (1., 0.)
  else begin
    let alpha = (!sxy -. (!sx *. !sy /. n)) /. denom in
    let baseline = (!sy -. (alpha *. !sx)) /. n in
    (alpha, baseline)
  end

let estimate ~traces ~known ~lo_sample ~hi_sample =
  estimate_points ~traces ~known [ (lo_sample, lo32); (hi_sample, hi32) ]

(* Under bus-HD leakage the load of the known operand's high word leaks
   the transition from its low word: HD(word_lo, word_hi), still fully
   public data. *)
let estimate_hd ~traces ~known ~hi_sample =
  estimate_points ~traces ~known [ (hi_sample, fun y -> lo32 y lxor hi32 y) ]
