(** First-class attack targets: one distinguisher stack, N schemes.

    The pipeline below the hypothesis layer — trace store, streaming
    Pearson rank, sequential early stopping, SR/GE/MTD metrics — is
    scheme-agnostic.  A {!S} packages everything that is {e not}:

    - an {b intermediate-value enumerator}: the per-unit guess space
      ({!S.guess_space}) and the matching {!Hypothesis.Model} part set
      ({!S.parts}) tying guessed key units to trace samples;
    - a {b leakage emitter} for victim capture ({!S.record_store}
      writes a sharded campaign plus ground-truth sidecars) with the
      store {!Dema.Stream.codec} that decodes it back;
    - a {b key-reassembly} step mapping per-unit winners back to secret
      key material ({!S.key_of_winners} / {!S.winners_of_key}), and an
      end-to-end driver ({!S.recover_store}) producing a canonical
      {!outcome} whose [witness] string is bit-exact comparable across
      configurations.

    Two instances ship: {!Falcon} re-expresses the existing FALCON
    mantissa/coefficient attack (delegating its multi-phase
    extend-and-prune driver to {!Recover}/{!Fullkey} unchanged, so
    rankings, stops and recovered keys are bit-identical to the
    pre-target entry points), and {!Hqc} attacks the HQC sparse
    polynomial multiplication victim of arXiv 2601.07634 (see {!Hqc_}
    [lib/hqc]): a secret-dependent rotate-and-accumulate schedule whose
    per-unit winners are the secret support positions, recovered in
    chained order with the already-won prefix folded into the
    hypothesis models. *)

type leakage = Recover.leakage

type outcome = {
  target : string;  (** {!S.name} of the instance that produced it *)
  success : bool;
      (** recovered key material matches the store's ground-truth
          sidecar *)
  witness : string;
      (** canonical encoding of the recovered key material — bit-exact
          comparable across [jobs] x backend x prefetch x leakage *)
  units : int;  (** attacked units (2n for FALCON, weight for HQC) *)
  traces : int;  (** campaign traces consumed (max over units) *)
  stop : Sequential.Campaign.summary option;
      (** per-unit early-stopping summary, when [?stop] was given *)
}

module type S = sig
  val name : string

  (** {2 Victim / capture side} *)

  val default_n : int
  (** the store ring-size parameter a fresh campaign records with *)

  val width : n:int -> int
  (** samples per trace at ring size [n] *)

  val profile_window : n:int -> int
  (** Periodic window length this target's {!Profile} template stores
      key on: every sample the profiled distinguisher scores sits at a
      stable window-relative offset, so one store serves every unit.
      FALCON uses the 16-sample multiplication window (the shape of
      the {!Recover.view} slices its phases rank over); HQC uses the
      per-unit accumulator word block. *)

  val profile_parts :
    leakage:leakage ->
    n:int ->
    dir:string ->
    (int * int * (Leakage.trace -> int)) list
  (** The profiling plan over a recorded campaign in [dir] (ground
      truth from the sidecars): every [(base, target, value)] triple
      declares that each trace carries, in the window starting at
      absolute sample [base], an intermediate at window-relative
      offset [target] whose true value is [value trace] — the same
      hypothesis models as {!parts}, applied to the {e true} guess, so
      profiling truth and attack hypotheses share one source.  Covers
      every offset the profiled recovery consults (for FALCON: both
      mantissa phases of every coefficient and multiplication).
      Raises [Failure] on missing/corrupt sidecars. *)

  val codec : Dema.Stream.codec
  (** decode for {!Dema.Stream} entry points over this target's
      stores *)

  val supports_stop : leakage -> bool
  (** whether {!recover_store} accepts [?stop] under that leakage
      family (FALCON has no d-free Hamming-distance decision sweep;
      HQC's HD hypothesis is prefix-free, so both families stop) *)

  val record_store :
    ?leakage:leakage ->
    dir:string ->
    n:int ->
    traces:int ->
    noise:float ->
    seed:int ->
    shard_traces:int ->
    unit ->
    unit
  (** Generate a fresh victim, record a sharded campaign into [dir] and
      write the target's ground-truth sidecar files next to the
      manifest.  [?leakage] selects the matching device emitter
      (default [`Hw]). *)

  (** {2 Intermediate-value enumerator} *)

  type known
  (** per-trace known operand fed to the part models *)

  val known_of_trace : Leakage.trace -> known

  val units : n:int -> int
  val unit_label : n:int -> int -> string

  val chained : bool
  (** whether unit [j]'s guess space and models depend on the winners
      of units [0..j-1] (the [prev] arguments below) *)

  val guess_count : n:int -> unit_index:int -> prev:int array -> int
  val guess_space : n:int -> unit_index:int -> prev:int array -> int Seq.t
  (** The declared per-unit guess space; [guess_count] equals the
      length of [guess_space] (enumerator totality, property-tested).
      For FALCON this is the paper's exhaustive width-25 low-mantissa
      phase space; the later phases are driven by {!recover_store}. *)

  val parts :
    leakage:leakage ->
    n:int ->
    unit_index:int ->
    prev:int array ->
    (int * known Hypothesis.Model.t) list
  (** The (absolute sample index, model) part set ranking unit
      [unit_index]'s guess space, in canonical order. *)

  val truth : n:int -> dir:string -> int array
  (** Per-unit ground-truth secrets read from the sidecars of a
      recorded store — what a perfect ranking's winners would be. *)

  (** {2 Key reassembly} *)

  val key_of_winners : n:int -> int array -> string
  (** Reassemble per-unit winners into the canonical key-material
      encoding (the {!outcome} [witness] format). *)

  val winners_of_key : n:int -> string -> int array option
  (** Inverse of {!key_of_winners}: [winners_of_key ~n
      (key_of_winners ~n w) = Some w] for any in-range winner vector
      (round-trip, property-tested). *)

  (** {2 End-to-end driver} *)

  val recover_store :
    ?ctx:Ctx.t ->
    ?leakage:leakage ->
    ?stop:Sequential.Decision.spec ->
    ?max_traces:int ->
    ?on_corrupt:[ `Fail | `Skip ] ->
    ?prefetch:bool ->
    dir:string ->
    Tracestore.Reader.t ->
    outcome
  (** Recover the secret from a recorded campaign ([dir] locates the
      sidecars; the reader streams the traces).  Deterministic: the
      [witness] (and stop points, with [?stop]) are bit-identical
      across [jobs], backends and prefetch.  Raises [Invalid_argument]
      when [?stop] is passed but [supports_stop leakage] is false, and
      [Failure] on missing/corrupt sidecars. *)
end

module Falcon : S with type known = Leakage.trace
(** The FALCON mantissa/coefficient attack behind the target
    interface.  [recover_store] delegates to
    {!Fullkey.recover_key_store} with the sampled-hypothesis strategy
    of [attack_cli crack] (per-unit seed [coeff*7 + mul], 512 decoys),
    so its recovered transform is bit-identical to the pre-target CLI
    path; the [witness] is the hex dump of the recovered FFT(f) bit
    patterns.  The flat enumerator exposes the width-25 low-mantissa
    phase (per-unit winners/truth are the 25-bit [d] values). *)

module Hqc : S with type known = int
(** The HQC rotate-and-accumulate victim ([lib/hqc]).  Units are the
    {!Hqc_.Params.weight} secret support positions, recovered in
    chained ascending order; [known] is the per-trace dense input word
    [u].  [witness] is {!Hqc_.encode_secret} of the recovered
    support. *)

val all : (module S) list
val names : string list
val find : string -> (module S) option
(** Registry for CLI dispatch ([--target falcon|hqc]). *)

val profile :
  ?ctx:Ctx.t ->
  ?leakage:leakage ->
  ?npoi:int ->
  ?ndim:int ->
  ?max_traces:int ->
  (module S) ->
  dir:string ->
  Tracestore.Reader.t ->
  Profile.store
(** Train a profiled-template store on a cloned-device campaign with
    known key: stream the store twice (moments + POI selection, then
    pooled covariance — see {!Profile.train}) over the target's
    {!S.profile_parts} plan, classing each observation by the Hamming
    weight of its true intermediate.  Scheme-generic — the same
    function trains FALCON and HQC stores.  [?leakage] defaults from
    [ctx.Ctx.leakage]; [?npoi]/[?ndim] override
    {!Profile.default_spec}.  Deterministic: shard order is the trace
    order, so the store is bit-identical across [jobs] and
    prefetch. *)
