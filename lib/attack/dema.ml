type scored = { guess : int; corr : float }

(* Strict total order on scored candidates: higher score first, equal
   scores broken by the smaller guess value.  The tie-break is what makes
   top-k selection independent of enumeration order — the paper's
   mantissa sweeps produce *exactly* tied alias classes, so without it
   the returned ranking depends on how the candidate sequence happens to
   be ordered (and chunked parallel sweeps would be nondeterministic). *)
let compare_scored a b =
  match Float.compare b.corr a.corr with
  | 0 -> compare a.guess b.guess
  | c -> c

(* Streaming top-k accumulator under {!compare_scored}, kept worst-first
   so eviction inspects the head.  Selection under a strict total order
   is a pure function of the candidate multiset: processing order,
   chunking and merge order cannot change the result. *)
module Topk = struct
  type t = { top : int; mutable size : int; mutable worst_first : scored list }

  let create top = { top; size = 0; worst_first = [] }
  let cmp_worst_first a b = compare_scored b a

  let add t s =
    if t.top > 0 then begin
      if t.size < t.top then begin
        t.worst_first <- List.merge cmp_worst_first [ s ] t.worst_first;
        t.size <- t.size + 1
      end
      else
        match t.worst_first with
        | worst :: rest when compare_scored s worst < 0 ->
            t.worst_first <- List.merge cmp_worst_first [ s ] rest
        | _ -> ()
    end

  let merge into t =
    List.iter (add into) t.worst_first;
    into

  let to_list t = List.rev t.worst_first
end

(* Candidates per unit of work distribution.  Scoring one candidate costs
   O(parts x traces) floating-point work (tens of thousands of ops at
   realistic trace counts), so ~512 candidates amortise the chunk
   hand-off far below the noise floor while still load-balancing the
   2^25-candidate enumerations of Section III-C. *)
let sweep_chunk = 512

let rank_scores ?ctx ?jobs ~score ~top candidates =
  let c = Ctx.resolve ?ctx ?jobs () in
  Topk.to_list
    (Parallel.map_reduce_chunks ~jobs:c.Ctx.jobs ~chunk:sweep_chunk
       ~map:(fun guesses ->
         let t = Topk.create top in
         Array.iter (fun g -> Topk.add t { guess = g; corr = score g }) guesses;
         t)
       ~reduce:Topk.merge ~init:(Topk.create top) candidates)

let rank_block_scores ?ctx ?jobs ~score_block ~top candidates =
  let c = Ctx.resolve ?ctx ?jobs () in
  Topk.to_list
    (Parallel.map_reduce_chunks ~jobs:c.Ctx.jobs ~chunk:sweep_chunk
       ~map:(fun guesses ->
         let scores = score_block guesses in
         let t = Topk.create top in
         Array.iteri (fun i g -> Topk.add t { guess = g; corr = scores.(i) }) guesses;
         t)
       ~reduce:Topk.merge ~init:(Topk.create top) candidates)

let hyp_vector ~model ~known guess =
  Array.map (fun y -> float_of_int (Bitops.popcount (model guess y))) known

let backend_name = Distinguisher.name

(* The sequential gap testers are correlation statistics (Fisher-z on
   |r|); a profiled selection has no incremental form of them. *)
let pearson_kernel_exn ~what = function
  | Distinguisher.Pearson_scalar -> Stats.Pearson.Batch.Scalar
  | Distinguisher.Pearson_batched -> Stats.Pearson.Batch.Batched
  | Distinguisher.Profiled _ ->
      invalid_arg
        (Printf.sprintf
           "%s: the profiled distinguisher has no sequential gap tester; use a \
            Pearson backend"
           what)

(* Shared profiled scoring: per (part, trace) the class-conditional
   log-likelihood table is candidate-independent, so it is computed once
   and every guess just sums its predicted class's entry — the template
   analogue of hoisting column statistics out of the Pearson sweep.  The
   mean (not sum) over traces keeps scores comparable across budgets,
   like a correlation. *)
let profiled_rank_scores ~ctx ~nclass ~tables ~known ~d ~top ~tick candidates =
  let nrm = 1. /. float_of_int (max 1 d) in
  let score guess =
    tick 1;
    let acc = ref 0. in
    List.iter
      (fun (model, tbl) ->
        for i = 0 to d - 1 do
          let cls = Bitops.popcount (model guess (Array.unsafe_get known i)) in
          let cls = if cls >= nclass then nclass - 1 else cls in
          acc := !acc +. Array.unsafe_get (Array.unsafe_get tbl i) cls
        done)
      tables;
    !acc *. nrm
  in
  rank_scores ~ctx ~score ~top candidates

(* Resolved hypothesis source over one segment of known operands: a
   split model becomes a precomputed per-trace table plus its integer
   evaluator (built once per sweep, on the owning domain, shared
   read-only); a plain model becomes a closure over the segment.  Both
   feed {!Stats.Pearson.Batch.Fused} with exactly [hyp_vector]'s
   intermediates, so the choice never changes a result. *)
type seg_src =
  | Tab of int array * (int -> int -> int)
  | App of (int -> int -> int)  (* guess -> segment-local trace -> intermediate *)

let seg_src model known =
  match model with
  | Hypothesis.Model.Split (prep, eval) -> Tab (Array.map prep known, eval)
  | Hypothesis.Model.Fn f -> App (fun g i -> f g (Array.unsafe_get known i))

let seg_fold acc src ~cols ~len guesses =
  match src with
  | Tab (prepped, eval) ->
      Stats.Pearson.Batch.Fused.fold_split acc ~eval ~guesses ~prepped ~cols ~len
  | App f ->
      Stats.Pearson.Batch.Fused.fold acc
        ~gen:(fun r i -> f (Array.unsafe_get guesses r) i)
        ~cols ~len

(* Consecutive parts sharing one model value (physical equality) score
   several columns from a single generated hypothesis stream — the
   hoisted refill.  Grouping preserves part order, so the per-guess
   score accumulation stays the scalar fold's addition sequence. *)
let group_parts parts =
  let rec go = function
    | [] -> []
    | (s, m) :: rest ->
        let rec take acc = function
          | (s', m') :: tl when m' == m -> take (s' :: acc) tl
          | tl -> (List.rev acc, tl)
        in
        let same, tl = take [ s ] rest in
        (m, Array.of_list same) :: go tl
  in
  go parts

(* ---- incremental hypothesis sweep for sequential campaigns ----

   The fixed-budget sweeps above see the whole campaign at once.  The
   adaptive engine instead feeds the same additions in batches and
   finalises correlations at every decision look, which the fused
   accumulators support directly: they persist across folds and
   [Fused.corr] reads them without resetting.  A sweep that is fed the
   campaign to exhaustion therefore scores bit-identically to
   [Stream.rank] / [rank], and at every intermediate look the Scalar and
   Batched backends agree bitwise (same additions, same epilogue) — the
   substrate for stop decisions that are reproducible across [jobs] and
   backends. *)
module Sweep = struct
  type 'k t = {
    backend : Stats.Pearson.Batch.backend;
    candidates : int array;
    models : 'k Hypothesis.Model.t array;
    appls : (int -> 'k -> int) array;
    nparts : int;
    mutable n : int;
    sums : float array;  (* per part: running column sum *)
    sqs : float array;  (* per part: running column sum of squares *)
    chunks : (int * int) array;  (* (offset, len) per candidate chunk *)
    cand_chunks : int array array;
    (* scalar arm: per part x candidate running hypothesis moments *)
    sh : float array array;
    shh : float array array;
    sht : float array array;
    (* batched arm: one persistent fused accumulator per (chunk, part) *)
    accs : Stats.Pearson.Batch.Fused.t array array;
  }

  let create ~backend ~parts candidates =
    let g = Array.length candidates in
    if g < 2 then invalid_arg "Dema.Sweep.create: need at least two candidates";
    let models = Array.of_list parts in
    let nparts = Array.length models in
    if nparts = 0 then invalid_arg "Dema.Sweep.create: no parts";
    let nchunks = (g + sweep_chunk - 1) / sweep_chunk in
    let chunks =
      Array.init nchunks (fun c ->
          let off = c * sweep_chunk in
          (off, min sweep_chunk (g - off)))
    in
    let scalar = backend = Stats.Pearson.Batch.Scalar in
    {
      backend;
      candidates;
      models;
      appls = Array.map Hypothesis.Model.apply models;
      nparts;
      n = 0;
      sums = Array.make nparts 0.;
      sqs = Array.make nparts 0.;
      chunks;
      cand_chunks =
        Array.map (fun (off, len) -> Array.sub candidates off len) chunks;
      sh = (if scalar then Array.init nparts (fun _ -> Array.make g 0.) else [||]);
      shh = (if scalar then Array.init nparts (fun _ -> Array.make g 0.) else [||]);
      sht = (if scalar then Array.init nparts (fun _ -> Array.make g 0.) else [||]);
      accs =
        (if scalar then [||]
         else
           Array.map
             (fun (_, len) ->
               Array.init nparts (fun _ ->
                   Stats.Pearson.Batch.Fused.create ~rows:len ~ncols:1))
             chunks);
    }

  let n t = t.n

  (* One batch: per part, its column segment plus the known operands the
     part's model digests (parts may live on different views, hence the
     per-part known array).  Additions land per (part, candidate)
     accumulator in global trace order — chunk parallelism touches
     disjoint candidate ranges, so every [jobs] produces the same
     state. *)
  let fold ?jobs t segs =
    if Array.length segs <> t.nparts then
      invalid_arg "Dema.Sweep.fold: wrong number of part segments";
    let len = Array.length (fst segs.(0)) in
    if len > 0 then begin
      Array.iter
        (fun (col, ks) ->
          if Array.length col <> len || Array.length ks <> len then
            invalid_arg "Dema.Sweep.fold: ragged part segments")
        segs;
      for j = 0 to t.nparts - 1 do
        let col, _ = segs.(j) in
        let s = ref t.sums.(j) and ss = ref t.sqs.(j) in
        for i = 0 to len - 1 do
          let v = Array.unsafe_get col i in
          s := !s +. v;
          ss := !ss +. (v *. v)
        done;
        t.sums.(j) <- !s;
        t.sqs.(j) <- !ss
      done;
      let jobs = min (Parallel.resolve jobs) (Array.length t.chunks) in
      (match t.backend with
      | Stats.Pearson.Batch.Scalar ->
          let work c =
            let off, clen = t.chunks.(c) in
            for j = 0 to t.nparts - 1 do
              let col, ks = segs.(j) in
              let model = t.appls.(j) in
              let sh = t.sh.(j) and shh = t.shh.(j) and sht = t.sht.(j) in
              for r = off to off + clen - 1 do
                let guess = Array.unsafe_get t.candidates r in
                let a = ref (Array.unsafe_get sh r)
                and aa = ref (Array.unsafe_get shh r)
                and at = ref (Array.unsafe_get sht r) in
                for i = 0 to len - 1 do
                  let x =
                    float_of_int
                      (Bitops.popcount (model guess (Array.unsafe_get ks i)))
                  in
                  a := !a +. x;
                  aa := !aa +. (x *. x);
                  at := !at +. (x *. Array.unsafe_get col i)
                done;
                Array.unsafe_set sh r !a;
                Array.unsafe_set shh r !aa;
                Array.unsafe_set sht r !at
              done
            done
          in
          ignore
            (Parallel.map_array ~jobs work
               (Array.init (Array.length t.chunks) Fun.id))
      | Stats.Pearson.Batch.Batched ->
          (* per-part segment sources (prep tables for split models) are
             built once on the owner and shared read-only by the chunks *)
          let srcs =
            Array.mapi (fun j (_, ks) -> seg_src t.models.(j) ks) segs
          in
          let work c =
            let guesses = t.cand_chunks.(c) in
            for j = 0 to t.nparts - 1 do
              let col, _ = segs.(j) in
              seg_fold t.accs.(c).(j) srcs.(j) ~cols:[| col |] ~len guesses
            done
          in
          ignore
            (Parallel.map_array ~jobs work
               (Array.init (Array.length t.chunks) Fun.id)));
      t.n <- t.n + len
    end

  (* Finalised per-candidate scores over everything folded so far: sum
     over parts of |r|, the fixed-budget sweeps' statistic, computed
     with their exact epilogue. *)
  let scores ?jobs t =
    let g = Array.length t.candidates in
    let out = Array.make g 0. in
    if t.n > 0 then begin
      let nf = float_of_int t.n in
      let stats =
        Array.init t.nparts (fun j ->
            (t.sums.(j), t.sqs.(j) -. (t.sums.(j) *. t.sums.(j) /. nf)))
      in
      let jobs = min (Parallel.resolve jobs) (Array.length t.chunks) in
      let work c =
        let off, clen = t.chunks.(c) in
        match t.backend with
        | Stats.Pearson.Batch.Scalar ->
            for j = 0 to t.nparts - 1 do
              let sum_t, var_t = stats.(j) in
              let sh = t.sh.(j) and shh = t.shh.(j) and sht = t.sht.(j) in
              for r = off to off + clen - 1 do
                let a = Array.unsafe_get sh r in
                let vh = Array.unsafe_get shh r -. (a *. a /. nf) in
                let cov = Array.unsafe_get sht r -. (a *. sum_t /. nf) in
                let rr =
                  if vh <= 0. || var_t <= 0. then 0.
                  else cov /. sqrt (vh *. var_t)
                in
                out.(r) <- out.(r) +. Float.abs rr
              done
            done
        | Stats.Pearson.Batch.Batched ->
            for j = 0 to t.nparts - 1 do
              let sum_t, var_t = stats.(j) in
              let rs =
                Stats.Pearson.Batch.Fused.corr t.accs.(c).(j) ~index:0 ~n:t.n
                  ~sum_t ~var_t
              in
              for i = 0 to clen - 1 do
                out.(off + i) <- out.(off + i) +. Float.abs rs.(i)
              done
            done
      in
      ignore
        (Parallel.map_array ~jobs work (Array.init (Array.length t.chunks) Fun.id))
    end;
    out

  let ranking ?jobs t ~top =
    let sc = scores ?jobs t in
    let tk = Topk.create top in
    Array.iteri
      (fun i s -> Topk.add tk { guess = t.candidates.(i); corr = s })
      sc;
    Topk.to_list tk

  (* Top-1 vs runner-up under the deterministic total order, reported as
     mean |r| over parts so the statistic lives in [0, 1] like a single
     correlation — what the Fisher-z decision rules expect. *)
  let leaders ?jobs t =
    let sc = scores ?jobs t in
    let best = ref 0 in
    let second = ref (-1) in
    let better a b =
      compare_scored
        { guess = t.candidates.(a); corr = sc.(a) }
        { guess = t.candidates.(b); corr = sc.(b) }
      < 0
    in
    for i = 1 to Array.length sc - 1 do
      if better i !best then begin
        second := !best;
        best := i
      end
      else if !second < 0 || better i !second then second := i
    done;
    let np = float_of_int t.nparts in
    {
      Sequential.Campaign.winner = t.candidates.(!best);
      best = sc.(!best) /. np;
      runner_up = sc.(!second) /. np;
    }
end

let rank ?ctx ?jobs ?backend ~traces ~parts ~known ~top candidates =
  let c = Ctx.resolve ?ctx ?jobs ?backend () in
  let obs = c.Ctx.obs in
  let d = Array.length traces in
  let nparts = List.length parts in
  let run () =
    (* Guesses are scored on worker domains; the count accumulates in a
       private Atomic and is emitted once, after the join, from the
       owning domain (the Obs determinism contract). *)
    let scored = if Obs.enabled obs then Some (Atomic.make 0) else None in
    let tick n = match scored with Some a -> ignore (Atomic.fetch_and_add a n) | None -> () in
    let result =
      match c.Ctx.backend with
      | Distinguisher.Pearson_scalar ->
          (* column statistics are a per-sweep invariant: computed once
             here, shared read-only by every guess on every domain *)
          let cols =
            List.map
              (fun (s, model) ->
                (Stats.Pearson.column_stats traces s, Hypothesis.Model.apply model))
              parts
          in
          let score guess =
            tick 1;
            List.fold_left
              (fun acc (col, model) ->
                acc
                +. Float.abs
                     (Stats.Pearson.corr_with col (hyp_vector ~model ~known guess)))
              0. cols
          in
          rank_scores ~ctx:c ~score ~top candidates
      | Distinguisher.Pearson_batched ->
          (* Fused sweep: no hypothesis block is ever materialised.  The
             per-sweep invariants — column statistics and, for split
             models, the prep table over the known operands — are built
             once under "dema.prep"; each work chunk then runs one fused
             kernel pass per part group, generating intermediates on the
             fly inside the register tiles.  Scores accumulate per guess
             in part order, exactly like the scalar fold, so every total
             is bit-identical. *)
          let groups =
            Obs.span ~level:Obs.Debug obs "dema.prep" (fun () ->
                List.map
                  (fun (m, samples) ->
                    ( seg_src m known,
                      Array.map (fun s -> Stats.Pearson.column_stats traces s) samples
                    ))
                  (group_parts parts))
          in
          let score_block guesses =
            let g = Array.length guesses in
            tick g;
            let scores = Array.make g 0. in
            List.iter
              (fun (src, stats) ->
                let acc =
                  Stats.Pearson.Batch.Fused.create ~rows:g ~ncols:(Array.length stats)
                in
                let cols = Array.map (fun cs -> cs.Stats.Pearson.col) stats in
                seg_fold acc src ~cols ~len:d guesses;
                Array.iteri
                  (fun ci cs ->
                    let rs =
                      Stats.Pearson.Batch.Fused.corr acc ~index:ci ~n:d
                        ~sum_t:cs.Stats.Pearson.sum ~var_t:cs.Stats.Pearson.var_n
                    in
                    for i = 0 to g - 1 do
                      scores.(i) <- scores.(i) +. Float.abs rs.(i)
                    done)
                  stats)
              groups;
            scores
          in
          Obs.span ~level:Obs.Debug obs "dema.score" (fun () ->
              rank_block_scores ~ctx:c ~score_block ~top candidates)
      | Distinguisher.Profiled store ->
          (* profiled arm: per-(part, trace) class-score tables computed
             once from the template store's points of interest (read
             straight off the full trace rows), then summed per guess *)
          let tables =
            Obs.span ~level:Obs.Debug obs "dema.prep" (fun () ->
                List.map
                  (fun (s, m) ->
                    let pt = Profile.point store ~sample:s in
                    ( Hypothesis.Model.apply m,
                      Array.map
                        (fun t ->
                          Profile.class_scores store pt ~get:(fun j -> t.(j)))
                        traces ))
                  parts)
          in
          Obs.span ~level:Obs.Debug obs "dema.score" (fun () ->
              profiled_rank_scores ~ctx:c ~nclass:store.Profile.nclass ~tables
                ~known ~d ~top ~tick candidates)
    in
    (match scored with
    | Some a ->
        let n = Atomic.get a in
        Obs.count obs "dema.guesses" n;
        (* one correlation = ~6 flops/trace (centre, multiply-accumulate,
           normalise amortised); a per-sweep order-of-magnitude estimate *)
        Obs.gauge obs "dema.flops_est"
          (float_of_int n *. float_of_int nparts *. 6. *. float_of_int d);
        (* fewer traces than candidates: the top of the ranking is
           dominated by chance correlations, not evidence *)
        if d < n then
          Obs.count ~level:Obs.Error
            ~fields:[ ("traces", Obs.Int d); ("guesses", Obs.Int n) ]
            obs "dema.degenerate_rank" 1
    | None -> ());
    result
  in
  if Obs.enabled obs then
    Obs.span obs "dema.rank"
      ~fields:
        [
          ("traces", Obs.Int d);
          ("parts", Obs.Int nparts);
          ("top", Obs.Int top);
          ("backend", Obs.Str (backend_name c.Ctx.backend));
          ("jobs", Obs.Int c.Ctx.jobs);
        ]
      run
  else run ()

let rank_absolute ?ctx ?jobs ?backend ~traces ~parts ~known ~top ~alpha ~baseline
    candidates =
  let c = Ctx.resolve ?ctx ?jobs ?backend () in
  let obs = c.Ctx.obs in
  let d = Array.length traces in
  let run () =
    let scored = if Obs.enabled obs then Some (Atomic.make 0) else None in
    let tick n = match scored with Some a -> ignore (Atomic.fetch_and_add a n) | None -> () in
    let result =
      (* the absolute-level distinguisher is a calibrated least-squares
         statistic, not a correlation and not profiled: a [Profiled]
         selection runs it on the scalar kernel ({!Ctx.kernel}) *)
      match Ctx.kernel c with
      | Stats.Pearson.Batch.Scalar ->
          let cols =
            List.map
              (fun (s, model) ->
                (Array.map (fun t -> t.(s)) traces, Hypothesis.Model.apply model))
              parts
          in
          let score guess =
            tick 1;
            let err = ref 0. in
            List.iter
              (fun (col, model) ->
                for i = 0 to d - 1 do
                  let pred =
                    baseline
                    +. (alpha *. float_of_int (Bitops.popcount (model guess known.(i))))
                  in
                  let r = col.(i) -. pred in
                  err := !err +. (r *. r)
                done)
              cols;
            -. !err /. float_of_int d
          in
          rank_scores ~ctx:c ~score ~top candidates
      | Stats.Pearson.Batch.Batched ->
          (* Same additions in the same (part, trace) order as the scalar
             arm, one running error per guess row — bit-identical scores;
             split models additionally skip the per-guess operand digest
             via the per-sweep prep table. *)
          let cols =
            List.map
              (fun (s, model) ->
                (Array.map (fun t -> t.(s)) traces, seg_src model known))
              parts
          in
          let score_block guesses =
            let g = Array.length guesses in
            tick g;
            let err = Array.make g 0. in
            List.iter
              (fun (col, src) ->
                let gen =
                  match src with
                  | Tab (prepped, eval) ->
                      fun gu i -> eval gu (Array.unsafe_get prepped i)
                  | App f -> f
                in
                for r = 0 to g - 1 do
                  let gu = Array.unsafe_get guesses r in
                  let e = ref (Array.unsafe_get err r) in
                  for i = 0 to d - 1 do
                    let pred =
                      baseline +. (alpha *. float_of_int (Bitops.popcount (gen gu i)))
                    in
                    let rr = Array.unsafe_get col i -. pred in
                    e := !e +. (rr *. rr)
                  done;
                  Array.unsafe_set err r !e
                done)
              cols;
            Array.map (fun e -> -. e /. float_of_int d) err
          in
          rank_block_scores ~ctx:c ~score_block ~top candidates
    in
    (match scored with
    | Some a -> Obs.count obs "dema.guesses" (Atomic.get a)
    | None -> ());
    result
  in
  Obs.span obs "dema.rank_absolute"
    ~fields:
      [
        ("traces", Obs.Int d);
        ("top", Obs.Int top);
        ("backend", Obs.Str (backend_name c.Ctx.backend));
      ]
    run

(* ---- sequential early-stopping rank ---- *)

type until = {
  ranking : scored list;
  stop : Sequential.Decision.stop option;
  n_traces : int;
  looks : int;
}

(* Single-unit campaign: one incremental sweep fed batch by batch, one
   tester looking at its leaders.  The unit's inner work (fold, score
   finalisation) parallelises over candidate chunks with the context's
   [jobs]; the campaign driver itself runs single-unit. *)
let run_until ~ctx ~spec ~total ~top ~parts ~feed candidates =
  let jobs = ctx.Ctx.jobs in
  let backend = pearson_kernel_exn ~what:"Dema.rank_until" ctx.Ctx.backend in
  let sweep = Sweep.create ~backend ~parts candidates in
  let unit_ =
    {
      Sequential.Campaign.fold = (fun segs -> Sweep.fold ~jobs sweep segs);
      leaders = (fun () -> Sweep.leaders ~jobs sweep);
    }
  in
  let results =
    Sequential.Campaign.run ~jobs:1 ~obs:ctx.Ctx.obs ~spec ~total ~feed
      ~length:(fun segs -> Array.length (snd segs.(0)))
      [| unit_ |]
  in
  let r = results.(0) in
  {
    ranking = Sweep.ranking ~jobs sweep ~top;
    stop = r.Sequential.Campaign.stop;
    n_traces = r.Sequential.Campaign.n_traces;
    looks = r.Sequential.Campaign.looks;
  }

let rank_until ?ctx ?jobs ?backend ~spec ?(batch = 64) ~traces ~parts ~known
    ~top candidates =
  let c = Ctx.resolve ?ctx ?jobs ?backend () in
  if batch < 1 then invalid_arg "Dema.rank_until: batch must be >= 1";
  let total = Array.length traces in
  let samples = Array.of_list (List.map fst parts) in
  let models = List.map snd parts in
  let pos = ref 0 in
  let feed () =
    if !pos >= total then None
    else begin
      let off = !pos in
      let len = min batch (total - off) in
      pos := off + len;
      let ks = Array.init len (fun i -> known.(off + i)) in
      Some
        (Array.map
           (fun s -> (Array.init len (fun i -> traces.(off + i).(s)), ks))
           samples)
    end
  in
  run_until ~ctx:c ~spec ~total ~top ~parts:models ~feed
    (Array.of_seq candidates)

(* ---- streaming engine over an on-disk trace store ----

   Everything below reads a Tracestore campaign one shard at a time:
   shards are decoded on the Parallel domain pool (one shard per work
   unit, so at most [jobs] decoded shards are ever live) and their
   per-shard results are combined in shard order.  Column extraction is
   arithmetic-free, so the assembled columns are byte-for-byte the ones
   the in-memory path sees and every ranking below is bit-identical to
   its in-memory counterpart at every [jobs]; the evolution path merges
   Welford/Chan accumulators in shard order, deterministic at every
   [jobs] and equal to a prefix rescan up to floating-point
   reassociation. *)
module Stream = struct
  type codec = {
    check : Tracestore.meta -> unit;
    decode : Tracestore.meta -> Tracestore.record -> Leakage.trace;
  }

  (* The historical decode path: a store of full FALCON signing traces,
     FFT(c) recomputed from the stored salt+message.  Every entry point
     defaults to it, so pre-target callers are bitwise unchanged. *)
  let falcon_codec =
    {
      check =
        (fun m ->
          if m.Tracestore.width <> m.Tracestore.n * Leakage.events_per_coeff then
            failwith
              (Printf.sprintf
                 "Dema.Stream: store width %d does not match n = %d signing \
                  traces (want %d)"
                 m.Tracestore.width m.Tracestore.n
                 (m.Tracestore.n * Leakage.events_per_coeff)));
      decode = (fun m r -> Leakage.of_record ~n:m.Tracestore.n r);
    }

  let check_meta codec reader =
    let m = Tracestore.Reader.meta reader in
    codec.check m;
    m

  let map_shards ?ctx ?jobs ?on_corrupt ?prefetch ?(codec = falcon_codec) reader
      f =
    let c = Ctx.resolve ?ctx ?jobs () in
    let on_corrupt = Option.value on_corrupt ~default:c.Ctx.on_corrupt in
    let prefetch = Option.value prefetch ~default:c.Ctx.prefetch in
    let obs = c.Ctx.obs in
    let m = check_meta codec reader in
    let shards = Tracestore.Reader.shard_count reader in
    (* [done_] and [skipped] are private worker-side Atomics; [done_]
       feeds only the lossy progress channel and the deterministic
       shard/byte/trace/skip counters are emitted below, after the join,
       from the owning domain. *)
    let done_ = Atomic.make 0 in
    let skipped = Atomic.make 0 in
    let fetch i =
      match Tracestore.Reader.read_shard reader i with
      | Some records -> Some (Array.map (codec.decode m) records)
      | None -> (
          (* the reader's [`Skip] policy swallowed a corrupt shard; a
             silently shrunken campaign skews every downstream statistic,
             so losing it must be loud unless the caller opted in *)
          match on_corrupt with
          | `Fail ->
              failwith
                (Printf.sprintf
                   "Dema.Stream: shard %d is corrupt or unreadable; pass \
                    ~on_corrupt:`Skip to drop it from the campaign"
                   i)
          | `Skip ->
              Atomic.incr skipped;
              None)
      | exception Failure msg -> (
          match on_corrupt with
          | `Fail -> failwith msg
          | `Skip ->
              Atomic.incr skipped;
              None)
    in
    let progress () =
      if Obs.enabled obs then
        Obs.progress ~total:shards obs "shards" (1 + Atomic.fetch_and_add done_ 1)
    in
    let results =
      if c.Ctx.jobs = 1 && prefetch && shards > 1 then begin
        (* single-job pipeline: a helper domain reads and decodes shard
           i+1 while the owner runs [f] on shard i, overlapping IO with
           scoring.  Results are consumed strictly in shard order, so the
           outcome is the sequential one. *)
        let out = ref [] in
        let next = ref (Some (Domain.spawn (fun () -> fetch 0))) in
        Fun.protect
          ~finally:(fun () ->
            match !next with
            | Some dm -> ( try ignore (Domain.join dm) with _ -> ())
            | None -> ())
          (fun () ->
            for i = 0 to shards - 1 do
              let cur = Domain.join (Option.get !next) in
              next :=
                if i + 1 < shards then Some (Domain.spawn (fun () -> fetch (i + 1)))
                else None;
              (match cur with
              | Some traces -> out := f i traces :: !out
              | None -> ());
              progress ()
            done);
        List.rev !out
      end
      else
        List.filter_map Fun.id
          (Parallel.map_chunks ~jobs:c.Ctx.jobs ~chunk:1
             ~map:(fun _ chunk ->
               let i = chunk.(0) in
               let r = Option.map (f i) (fetch i) in
               progress ();
               r)
             (Seq.init shards Fun.id))
    in
    if Obs.enabled obs then begin
      let bytes = ref 0 and traces = ref 0 in
      for i = 0 to shards - 1 do
        let e = Tracestore.Reader.entry reader i in
        bytes := !bytes + e.Tracestore.bytes;
        traces := !traces + e.Tracestore.count
      done;
      Obs.count obs "tracestore.shards" shards;
      Obs.count obs "tracestore.bytes" !bytes;
      Obs.count obs "tracestore.traces" !traces;
      let sk = Atomic.get skipped in
      if sk > 0 then Obs.count obs "dema.shards_skipped" sk
    end;
    results

  let extract ?ctx ?jobs ?on_corrupt ?prefetch ?codec reader ~samples ~known =
    let c = Ctx.resolve ?ctx ?jobs () in
    let samples = Array.of_list samples in
    let pieces =
      map_shards ~ctx:c ?on_corrupt ?prefetch ?codec reader (fun _ traces ->
          ( Array.map
              (fun (t : Leakage.trace) -> Array.map (fun s -> t.samples.(s)) samples)
              traces,
            Array.map known traces ))
    in
    ( Array.concat (List.map fst pieces),
      Array.concat (List.map snd pieces) )

  (* Streaming rank never materialises the campaign: each shard yields a
     per-part column segment plus its known operands, global column
     moments come from one sequential pass over the segments in shard
     order (the very additions [column_stats] makes on the concatenated
     column), and both backends then score the segments in shard order —
     the scalar arm with running corr_with accumulators, the batched arm
     by folding each part group's Fused accumulator across segments.
     Every addition lands in the same accumulator in the same global
     trace order as the in-memory sweep, so results are bit-identical to
     [Dema.rank] on the extracted campaign at every [jobs] and backend. *)
  let rank ?ctx ?jobs ?backend ?on_corrupt ?prefetch ?codec reader ~parts ~known
      ~top candidates =
    let c = Ctx.resolve ?ctx ?jobs ?backend () in
    let obs = c.Ctx.obs in
    (* profiled arm: extract each part's template POI columns (one
       arithmetic-free streaming pass, deterministic in shard order),
       compute the per-(part, trace) class tables, then score exactly
       like the in-memory profiled [rank] — bit-identical to it over the
       same traces at every [jobs] and prefetch setting. *)
    let run_profiled store =
      let pts =
        List.map
          (fun (s, m) ->
            (Profile.point store ~sample:s, Hypothesis.Model.apply m))
          parts
      in
      let samples =
        List.concat_map (fun (pt, _) -> Array.to_list pt.Profile.abs_pois) pts
      in
      let cols, ks =
        Obs.span ~level:Obs.Debug obs "dema.stream.extract" (fun () ->
            extract ~ctx:c ?on_corrupt ?prefetch ?codec reader ~samples ~known)
      in
      let d = Array.length ks in
      let scored = if Obs.enabled obs then Some (Atomic.make 0) else None in
      let tick n =
        match scored with Some a -> ignore (Atomic.fetch_and_add a n) | None -> ()
      in
      let tables =
        Obs.span ~level:Obs.Debug obs "dema.prep" (fun () ->
            let off = ref 0 in
            List.map
              (fun (pt, model) ->
                let base = !off in
                let npoi = Array.length pt.Profile.abs_pois in
                off := base + npoi;
                let pos = Hashtbl.create npoi in
                Array.iteri
                  (fun k a -> Hashtbl.replace pos a (base + k))
                  pt.Profile.abs_pois;
                ( model,
                  Array.map
                    (fun row ->
                      Profile.class_scores store pt ~get:(fun j ->
                          row.(Hashtbl.find pos j)))
                    cols ))
              pts)
      in
      let result =
        Obs.span ~level:Obs.Debug obs "dema.score" (fun () ->
            profiled_rank_scores ~ctx:c ~nclass:store.Profile.nclass ~tables
              ~known:ks ~d ~top ~tick candidates)
      in
      (match scored with
      | Some a ->
          let n = Atomic.get a in
          Obs.count obs "dema.guesses" n;
          if d < n then
            Obs.count ~level:Obs.Error
              ~fields:[ ("traces", Obs.Int d); ("guesses", Obs.Int n) ]
              obs "dema.degenerate_rank" 1
      | None -> ());
      result
    in
    let run_pearson () =
      let samples = Array.of_list (List.map fst parts) in
      let nsamp = Array.length samples in
      let pieces =
        Obs.span ~level:Obs.Debug obs "dema.stream.extract" (fun () ->
            Array.of_list
              (map_shards ~ctx:c ?on_corrupt ?prefetch ?codec reader
                 (fun _ traces ->
                   let pd = Array.length traces in
                   ( Array.init nsamp (fun j ->
                         let s = samples.(j) in
                         Array.init pd (fun i -> traces.(i).Leakage.samples.(s))),
                     Array.map known traces ))))
      in
      let total_d = Array.fold_left (fun a (_, ks) -> a + Array.length ks) 0 pieces in
      let nf = float_of_int total_d in
      let scored = if Obs.enabled obs then Some (Atomic.make 0) else None in
      let tick n = match scored with Some a -> ignore (Atomic.fetch_and_add a n) | None -> () in
      (* whole-campaign column moments, accumulated segment by segment in
         shard order — bit-identical to [column_stats] on the
         concatenated column *)
      let stats =
        Array.init nsamp (fun j ->
            let s = ref 0. and ss = ref 0. in
            Array.iter
              (fun (cols, _) ->
                let col = cols.(j) in
                for i = 0 to Array.length col - 1 do
                  let v = Array.unsafe_get col i in
                  s := !s +. v;
                  ss := !ss +. (v *. v)
                done)
              pieces;
            (!s, !ss -. (!s *. !s /. nf)))
      in
      let result =
        match c.Ctx.backend with
        | Distinguisher.Profiled _ -> assert false (* handled by run_profiled *)
        | Distinguisher.Pearson_scalar ->
            let models =
              Array.of_list (List.map (fun (_, m) -> Hypothesis.Model.apply m) parts)
            in
            let score guess =
              tick 1;
              let acc = ref 0. in
              for j = 0 to nsamp - 1 do
                let model = models.(j) in
                let sh = ref 0. and shh = ref 0. and sht = ref 0. in
                Array.iter
                  (fun (cols, ks) ->
                    let col = cols.(j) in
                    for i = 0 to Array.length ks - 1 do
                      let x = float_of_int (Bitops.popcount (model guess ks.(i))) in
                      sh := !sh +. x;
                      shh := !shh +. (x *. x);
                      sht := !sht +. (x *. Array.unsafe_get col i)
                    done)
                  pieces;
                let sum_t, var_t = stats.(j) in
                let vh = !shh -. (!sh *. !sh /. nf) in
                let cov = !sht -. (!sh *. sum_t /. nf) in
                let r =
                  if vh <= 0. || var_t <= 0. then 0. else cov /. sqrt (vh *. var_t)
                in
                acc := !acc +. Float.abs r
              done;
              !acc
            in
            rank_scores ~ctx:c ~score ~top candidates
        | Distinguisher.Pearson_batched ->
            let groups =
              Obs.span ~level:Obs.Debug obs "dema.prep" (fun () ->
                  List.map
                    (fun (m, js) ->
                      (js, Array.map (fun (_, ks) -> seg_src m ks) pieces))
                    (group_parts (List.mapi (fun j (_, m) -> (j, m)) parts)))
            in
            let score_block guesses =
              let g = Array.length guesses in
              tick g;
              let scores = Array.make g 0. in
              List.iter
                (fun (js, srcs) ->
                  let acc =
                    Stats.Pearson.Batch.Fused.create ~rows:g ~ncols:(Array.length js)
                  in
                  Array.iteri
                    (fun pi (cols, ks) ->
                      seg_fold acc srcs.(pi)
                        ~cols:(Array.map (fun j -> cols.(j)) js)
                        ~len:(Array.length ks) guesses)
                    pieces;
                  Array.iteri
                    (fun ci j ->
                      let sum_t, var_t = stats.(j) in
                      let rs =
                        Stats.Pearson.Batch.Fused.corr acc ~index:ci ~n:total_d
                          ~sum_t ~var_t
                      in
                      for i = 0 to g - 1 do
                        scores.(i) <- scores.(i) +. Float.abs rs.(i)
                      done)
                    js)
                groups;
              scores
            in
            Obs.span ~level:Obs.Debug obs "dema.score" (fun () ->
                rank_block_scores ~ctx:c ~score_block ~top candidates)
      in
      (match scored with
      | Some a ->
          let n = Atomic.get a in
          Obs.count obs "dema.guesses" n;
          (* degenerate rank regime: see [rank] *)
          if total_d < n then
            Obs.count ~level:Obs.Error
              ~fields:[ ("traces", Obs.Int total_d); ("guesses", Obs.Int n) ]
              obs "dema.degenerate_rank" 1
      | None -> ());
      result
    in
    let run () =
      match c.Ctx.backend with
      | Distinguisher.Profiled store -> run_profiled store
      | Distinguisher.Pearson_scalar | Distinguisher.Pearson_batched ->
          run_pearson ()
    in
    Obs.span obs "dema.stream.rank"
      ~fields:
        [
          ("shards", Obs.Int (Tracestore.Reader.shard_count reader));
          ("backend", Obs.Str (backend_name c.Ctx.backend));
        ]
      run

  (* Pull-based shard feed for adaptive campaigns: decoded strictly in
     shard order, one at a time, with one decode kept in flight on a
     helper domain when [prefetch] — the caller consumes at its own
     pace and simply stops pulling at the stopping point, so unread
     shards are never decoded.  The delivered trace sequence (order,
     skips, truncation at the cap) is independent of [prefetch]. *)
  type feed = {
    next : unit -> Leakage.trace array option;
    close : unit -> unit;
    total : int;
    skipped : unit -> int;
  }

  let shard_feed ?(on_corrupt = `Fail) ?(prefetch = true) ?(codec = falcon_codec)
      ?max_traces reader =
    let m = check_meta codec reader in
    let shards = Tracestore.Reader.shard_count reader in
    let cap =
      let avail = Tracestore.Reader.total_traces reader in
      match max_traces with
      | None -> avail
      | Some k ->
          if k < 1 then
            invalid_arg "Dema.Stream.shard_feed: max_traces must be >= 1";
          min k avail
    in
    let skipped = ref 0 in
    let fetch i =
      match Tracestore.Reader.read_shard reader i with
      | Some records -> Some (Array.map (codec.decode m) records)
      | None -> (
          match on_corrupt with
          | `Fail ->
              failwith
                (Printf.sprintf
                   "Dema.Stream: shard %d is corrupt or unreadable; pass \
                    ~on_corrupt:`Skip to drop it from the campaign"
                   i)
          | `Skip -> None)
      | exception Failure msg -> (
          match on_corrupt with `Fail -> failwith msg | `Skip -> None)
    in
    let idx = ref 0 in
    let pending = ref None in
    let take () =
      let cur =
        match !pending with
        | Some d ->
            pending := None;
            Domain.join d
        | None -> fetch !idx
      in
      incr idx;
      if prefetch && !idx < shards then begin
        let i = !idx in
        pending := Some (Domain.spawn (fun () -> fetch i))
      end;
      (match cur with None -> incr skipped | Some _ -> ());
      cur
    in
    let delivered = ref 0 in
    let rec next () =
      if !delivered >= cap || !idx >= shards then None
      else
        match take () with
        | None -> next ()
        | Some tr ->
            let room = cap - !delivered in
            let tr =
              if Array.length tr > room then Array.sub tr 0 room else tr
            in
            delivered := !delivered + Array.length tr;
            if Array.length tr = 0 then next () else Some tr
    in
    let close () =
      match !pending with
      | Some d ->
          pending := None;
          (try ignore (Domain.join d) with _ -> ())
      | None -> ()
    in
    { next; close; total = cap; skipped = (fun () -> !skipped) }

  (* Adaptive variant of [rank]: shards are decoded one at a time (with
     the same corrupt-shard policy and an optional decode-ahead domain)
     and fed to an incremental sweep; the tester looks after each shard
     per the spec's schedule and the pull stops at the stopping point.
     Fed to exhaustion it returns [rank]'s exact ranking. *)
  let rank_until ?ctx ?jobs ?backend ?on_corrupt ?prefetch ?codec ~spec
      ?max_traces reader ~parts ~known ~top candidates =
    let c = Ctx.resolve ?ctx ?jobs ?backend () in
    let obs = c.Ctx.obs in
    let fd =
      shard_feed
        ~on_corrupt:(Option.value on_corrupt ~default:c.Ctx.on_corrupt)
        ~prefetch:(Option.value prefetch ~default:c.Ctx.prefetch)
        ?codec ?max_traces reader
    in
    let samples = Array.of_list (List.map fst parts) in
    let models = List.map snd parts in
    let feed () =
      match fd.next () with
      | None -> None
      | Some tr ->
          let ks = Array.map known tr in
          Some
            (Array.map
               (fun s ->
                 ( Array.map (fun (t : Leakage.trace) -> t.Leakage.samples.(s)) tr,
                   ks ))
               samples)
    in
    Fun.protect ~finally:fd.close (fun () ->
        Obs.span obs "dema.stream.rank_until"
          ~fields:
            [
              ("shards", Obs.Int (Tracestore.Reader.shard_count reader));
              ("total", Obs.Int fd.total);
              ("backend", Obs.Str (backend_name c.Ctx.backend));
              ("jobs", Obs.Int c.Ctx.jobs);
            ]
          (fun () ->
            let r =
              run_until ~ctx:c ~spec ~total:fd.total ~top ~parts:models ~feed
                (Array.of_seq candidates)
            in
            let sk = fd.skipped () in
            if Obs.enabled obs && sk > 0 then
              Obs.count obs "dema.shards_skipped" sk;
            r))

  let evolution ?ctx ?jobs ?on_corrupt ?prefetch ?codec reader ~sample ~model
      ~known ~guess =
    let c = Ctx.resolve ?ctx ?jobs () in
    if Tracestore.Reader.total_traces reader = 0 then
      failwith "Dema.Stream.evolution: store holds no traces (empty campaign)";
    (* below 4 traces the correlation (and any Fisher-z band on it) is
       pure noise — flag the degenerate campaign instead of silently
       returning it *)
    let tot = Tracestore.Reader.total_traces reader in
    if tot <= 3 then
      Obs.count ~level:Obs.Error
        ~fields:[ ("traces", Obs.Int tot) ]
        c.Ctx.obs "dema.degenerate_evolution" 1;
    let per_shard =
      map_shards ~ctx:c ?on_corrupt ?prefetch ?codec reader (fun _ traces ->
          let acc = Stats.Welford.Cov.create () in
          Array.iter
            (fun (t : Leakage.trace) ->
              Stats.Welford.Cov.add acc
                (float_of_int (Bitops.popcount (model guess (known t))))
                t.samples.(sample))
            traces;
          acc)
    in
    let _, checkpoints =
      List.fold_left
        (fun (acc, out) shard_acc ->
          let acc = Stats.Welford.Cov.merge acc shard_acc in
          ( acc,
            (Stats.Welford.Cov.count acc, Stats.Welford.Cov.correlation acc) :: out ))
        (Stats.Welford.Cov.create (), [])
        per_shard
    in
    List.rev checkpoints
end

let corr_time ?ctx ?backend ~traces ~model ~known ~guesses () =
  let c = Ctx.resolve ?ctx ?backend () in
  Obs.span c.Ctx.obs "dema.corr_time"
    ~fields:
      [
        ("guesses", Obs.Int (Array.length guesses));
        ("backend", Obs.Str (backend_name c.Ctx.backend));
      ]
    (fun () ->
      (* a correlation-vs-time matrix is Pearson by definition; a
         [Profiled] selection maps to the scalar kernel via {!Ctx.kernel} *)
      match Ctx.kernel c with
      | Stats.Pearson.Batch.Scalar ->
          let hyps = Array.map (hyp_vector ~model ~known) guesses in
          Stats.Pearson.corr_matrix ~traces ~hyps
      | Stats.Pearson.Batch.Batched ->
          let blk =
            Hypothesis.Block.create ~rows:(Array.length guesses)
              ~cols:(Array.length known)
          in
          let hb = Hypothesis.Block.fill blk ~model ~known guesses in
          Stats.Pearson.Batch.corr_matrix_blocked ~traces hb)

let evolution ~traces ~sample ~model ~known ~guess ~step =
  let hyp = hyp_vector ~model ~known guess in
  Stats.Pearson.evolution ~traces ~hyp ~sample ~step

(* ---- registered distinguisher instances ----

   The {!Distinguisher.S} streaming seam, instantiated.  The two Pearson
   instances wrap the incremental {!Sweep} (whose fed-to-exhaustion
   parity with [rank] is test-pinned), so scoring through the interface
   is bit-identical to the pre-interface fixed-budget paths; the
   profiled instance accumulates template log-likelihoods per guess with
   the same class tables the [rank] arms use. *)

module Pearson_instance (K : sig
  val kernel : Stats.Pearson.Batch.backend
end) : Distinguisher.S = struct
  let name = Distinguisher.name (Distinguisher.of_pearson K.kernel)

  type 'k state = { sweep : 'k Sweep.t; needs : int list list }

  let create ~parts ~guesses =
    {
      sweep = Sweep.create ~backend:K.kernel ~parts:(List.map snd parts) guesses;
      needs = List.map (fun (s, _) -> [ s ]) parts;
    }

  let needs st = st.needs

  let fold ?jobs st batch =
    let segs =
      Array.map
        (fun (cols, ks) ->
          if Array.length cols <> 1 then
            invalid_arg
              "Dema.distinguisher: a Pearson part folds exactly one column";
          (cols.(0), ks))
        batch
    in
    Sweep.fold ?jobs st.sweep segs

  let finalize ?jobs st = Sweep.scores ?jobs st.sweep
end

module Pearson_scalar_instance = Pearson_instance (struct
  let kernel = Stats.Pearson.Batch.Scalar
end)

module Pearson_batched_instance = Pearson_instance (struct
  let kernel = Stats.Pearson.Batch.Batched
end)

module Profiled_instance (P : sig
  val store : Profile.store
end) : Distinguisher.S = struct
  let name = "profiled"

  type 'k state = {
    guesses : int array;
    parts : (Profile.template * (int -> 'k -> int)) array;
    needs : int list list;
    sll : float array array;
        (* per part x guess: summed class log-likelihood.  Keeping one
           accumulator per part means every accumulator sees its terms
           in global trace order no matter how the stream is chunked,
           so scores are bit-identical across batch splits (in-memory
           vs per-shard streaming), not just across [jobs]. *)
    mutable n : int;
  }

  let create ~parts ~guesses =
    let resolved =
      Array.of_list
        (List.map
           (fun (s, m) ->
             let pt = Profile.point P.store ~sample:s in
             (pt, Hypothesis.Model.apply m))
           parts)
    in
    {
      guesses;
      parts = Array.map (fun (pt, m) -> (pt.Profile.tpl, m)) resolved;
      needs =
        Array.to_list
          (Array.map
             (fun (pt, _) -> Array.to_list pt.Profile.abs_pois)
             resolved);
      sll =
        Array.init (List.length parts) (fun _ ->
            Array.make (Array.length guesses) 0.);
      n = 0;
    }

  let needs st = st.needs

  (* Accumulation is per-guess into disjoint slots in a fixed loop
     order, so [jobs] cannot change the result; the fold runs on the
     owner domain. *)
  let fold ?jobs st batch =
    ignore jobs;
    if Array.length batch <> Array.length st.parts then
      invalid_arg "Dema.distinguisher: wrong number of part segments";
    let nclass = P.store.Profile.nclass in
    let g = Array.length st.guesses in
    let len =
      match batch with [||] -> 0 | _ -> Array.length (snd batch.(0))
    in
    Array.iteri
      (fun j (cols, ks) ->
        let tpl, model = st.parts.(j) in
        let acc = st.sll.(j) in
        let npoi = Array.length tpl.Profile.pois in
        if Array.length cols <> npoi then
          invalid_arg
            "Dema.distinguisher: profiled part needs its template's POI columns";
        Array.iter
          (fun (col : float array) ->
            if Array.length col <> len then
              invalid_arg "Dema.distinguisher: ragged part segments")
          cols;
        if Array.length ks <> len then
          invalid_arg "Dema.distinguisher: ragged part segments";
        let x = Array.make npoi 0. in
        for i = 0 to len - 1 do
          for k = 0 to npoi - 1 do
            x.(k) <- cols.(k).(i)
          done;
          let scores = Profile.class_scores_vec P.store tpl x in
          let y = ks.(i) in
          for r = 0 to g - 1 do
            let cls = Bitops.popcount (model st.guesses.(r) y) in
            let cls = if cls >= nclass then nclass - 1 else cls in
            acc.(r) <- acc.(r) +. scores.(cls)
          done
        done)
      batch;
    st.n <- st.n + len

  let finalize ?jobs st =
    ignore jobs;
    let nrm = 1. /. float_of_int (max 1 st.n) in
    Array.init
      (Array.length st.guesses)
      (fun r ->
        let s = ref 0. in
        Array.iter (fun acc -> s := !s +. acc.(r)) st.sll;
        !s *. nrm)
end

let distinguisher : Distinguisher.selection -> (module Distinguisher.S) =
  function
  | Distinguisher.Pearson_scalar -> (module Pearson_scalar_instance)
  | Distinguisher.Pearson_batched -> (module Pearson_batched_instance)
  | Distinguisher.Profiled store ->
      (module Profiled_instance (struct
        let store = store
      end))
