type scored = { guess : int; corr : float }

(* Strict total order on scored candidates: higher score first, equal
   scores broken by the smaller guess value.  The tie-break is what makes
   top-k selection independent of enumeration order — the paper's
   mantissa sweeps produce *exactly* tied alias classes, so without it
   the returned ranking depends on how the candidate sequence happens to
   be ordered (and chunked parallel sweeps would be nondeterministic). *)
let compare_scored a b =
  match Float.compare b.corr a.corr with
  | 0 -> compare a.guess b.guess
  | c -> c

(* Streaming top-k accumulator under {!compare_scored}, kept worst-first
   so eviction inspects the head.  Selection under a strict total order
   is a pure function of the candidate multiset: processing order,
   chunking and merge order cannot change the result. *)
module Topk = struct
  type t = { top : int; mutable size : int; mutable worst_first : scored list }

  let create top = { top; size = 0; worst_first = [] }
  let cmp_worst_first a b = compare_scored b a

  let add t s =
    if t.top > 0 then begin
      if t.size < t.top then begin
        t.worst_first <- List.merge cmp_worst_first [ s ] t.worst_first;
        t.size <- t.size + 1
      end
      else
        match t.worst_first with
        | worst :: rest when compare_scored s worst < 0 ->
            t.worst_first <- List.merge cmp_worst_first [ s ] rest
        | _ -> ()
    end

  let merge into t =
    List.iter (add into) t.worst_first;
    into

  let to_list t = List.rev t.worst_first
end

(* Candidates per unit of work distribution.  Scoring one candidate costs
   O(parts x traces) floating-point work (tens of thousands of ops at
   realistic trace counts), so ~512 candidates amortise the chunk
   hand-off far below the noise floor while still load-balancing the
   2^25-candidate enumerations of Section III-C. *)
let sweep_chunk = 512

let rank_scores ?ctx ?jobs ~score ~top candidates =
  let c = Ctx.resolve ?ctx ?jobs () in
  Topk.to_list
    (Parallel.map_reduce_chunks ~jobs:c.Ctx.jobs ~chunk:sweep_chunk
       ~map:(fun guesses ->
         let t = Topk.create top in
         Array.iter (fun g -> Topk.add t { guess = g; corr = score g }) guesses;
         t)
       ~reduce:Topk.merge ~init:(Topk.create top) candidates)

let rank_block_scores ?ctx ?jobs ~score_block ~top candidates =
  let c = Ctx.resolve ?ctx ?jobs () in
  Topk.to_list
    (Parallel.map_reduce_chunks ~jobs:c.Ctx.jobs ~chunk:sweep_chunk
       ~map:(fun guesses ->
         let scores = score_block guesses in
         let t = Topk.create top in
         Array.iteri (fun i g -> Topk.add t { guess = g; corr = scores.(i) }) guesses;
         t)
       ~reduce:Topk.merge ~init:(Topk.create top) candidates)

let hyp_vector ~model ~known guess =
  Array.map (fun y -> float_of_int (Bitops.popcount (model guess y))) known

(* Rows per hypothesis block in the batched sweep: a 512-candidate work
   chunk is scored as four 128-row blocks, keeping the per-domain
   scratch buffer at 128 x D doubles (10 MB at the paper's 10k traces)
   while still amortising the column pass over many guesses. *)
let batch_rows = 128

let backend_name = function
  | Stats.Pearson.Batch.Scalar -> "scalar"
  | Stats.Pearson.Batch.Batched -> "batched"

let rank ?ctx ?jobs ?backend ~traces ~parts ~known ~top candidates =
  let c = Ctx.resolve ?ctx ?jobs ?backend () in
  let obs = c.Ctx.obs in
  let d = Array.length traces in
  let nparts = List.length parts in
  let run () =
    (* Guesses are scored on worker domains; the count accumulates in a
       private Atomic and is emitted once, after the join, from the
       owning domain (the Obs determinism contract). *)
    let scored = if Obs.enabled obs then Some (Atomic.make 0) else None in
    let tick n = match scored with Some a -> ignore (Atomic.fetch_and_add a n) | None -> () in
    (* column statistics are a per-sweep invariant: computed once here,
       shared read-only by every guess on every domain *)
    let cols =
      List.map (fun (s, model) -> (Stats.Pearson.column_stats traces s, model)) parts
    in
    let result =
      match c.Ctx.backend with
      | Stats.Pearson.Batch.Scalar ->
          let score guess =
            tick 1;
            List.fold_left
              (fun acc (col, model) ->
                acc
                +. Float.abs
                     (Stats.Pearson.corr_with col (hyp_vector ~model ~known guess)))
              0. cols
          in
          rank_scores ~ctx:c ~score ~top candidates
      | Stats.Pearson.Batch.Batched ->
          (* Per chunk: slice the candidates into row blocks, fill the
             domain's scratch block once per (slice, part) and score the
             whole slice in one fused kernel pass.  Scores accumulate per
             guess in part order, exactly like the scalar fold, so every
             total is bit-identical. *)
          let score_block guesses =
            let g = Array.length guesses in
            tick g;
            let scores = Array.make g 0. in
            let lo = ref 0 in
            while !lo < g do
              let len = min batch_rows (g - !lo) in
              let slice = Array.sub guesses !lo len in
              let blk = Hypothesis.Block.scratch ~rows:batch_rows ~cols:d in
              List.iter
                (fun (col, model) ->
                  let hb = Hypothesis.Block.fill blk ~model ~known slice in
                  let rs = Stats.Pearson.Batch.corr_block col hb in
                  for i = 0 to len - 1 do
                    scores.(!lo + i) <- scores.(!lo + i) +. Float.abs rs.(i)
                  done)
                cols;
              lo := !lo + len
            done;
            scores
          in
          rank_block_scores ~ctx:c ~score_block ~top candidates
    in
    (match scored with
    | Some a ->
        let n = Atomic.get a in
        Obs.count obs "dema.guesses" n;
        (* one correlation = ~6 flops/trace (centre, multiply-accumulate,
           normalise amortised); a per-sweep order-of-magnitude estimate *)
        Obs.gauge obs "dema.flops_est"
          (float_of_int n *. float_of_int nparts *. 6. *. float_of_int d)
    | None -> ());
    result
  in
  if Obs.enabled obs then
    Obs.span obs "dema.rank"
      ~fields:
        [
          ("traces", Obs.Int d);
          ("parts", Obs.Int nparts);
          ("top", Obs.Int top);
          ("backend", Obs.Str (backend_name c.Ctx.backend));
          ("jobs", Obs.Int c.Ctx.jobs);
        ]
      run
  else run ()

let rank_absolute ?ctx ?jobs ~traces ~parts ~known ~top ~alpha ~baseline candidates =
  let c = Ctx.resolve ?ctx ?jobs () in
  let cols =
    List.map (fun (s, model) -> (Array.map (fun t -> t.(s)) traces, model)) parts
  in
  let d = Array.length traces in
  let score guess =
    let err = ref 0. in
    List.iter
      (fun (col, model) ->
        for i = 0 to d - 1 do
          let pred =
            baseline +. (alpha *. float_of_int (Bitops.popcount (model guess known.(i))))
          in
          let r = col.(i) -. pred in
          err := !err +. (r *. r)
        done)
      cols;
    -. !err /. float_of_int d
  in
  Obs.span c.Ctx.obs "dema.rank_absolute"
    ~fields:[ ("traces", Obs.Int d); ("top", Obs.Int top) ]
    (fun () -> rank_scores ~ctx:c ~score ~top candidates)

(* ---- streaming engine over an on-disk trace store ----

   Everything below reads a Tracestore campaign one shard at a time:
   shards are decoded on the Parallel domain pool (one shard per work
   unit, so at most [jobs] decoded shards are ever live) and their
   per-shard results are combined in shard order.  Column extraction is
   arithmetic-free, so the assembled columns are byte-for-byte the ones
   the in-memory path sees and every ranking below is bit-identical to
   its in-memory counterpart at every [jobs]; the evolution path merges
   Welford/Chan accumulators in shard order, deterministic at every
   [jobs] and equal to a prefix rescan up to floating-point
   reassociation. *)
module Stream = struct
  let check_meta reader =
    let m = Tracestore.Reader.meta reader in
    if m.Tracestore.width <> m.Tracestore.n * Leakage.events_per_coeff then
      failwith
        (Printf.sprintf
           "Dema.Stream: store width %d does not match n = %d signing traces (want %d)"
           m.Tracestore.width m.Tracestore.n
           (m.Tracestore.n * Leakage.events_per_coeff));
    m

  let map_shards ?ctx ?jobs reader f =
    let c = Ctx.resolve ?ctx ?jobs () in
    let obs = c.Ctx.obs in
    let m = check_meta reader in
    let shards = Tracestore.Reader.shard_count reader in
    let idx = Seq.init shards Fun.id in
    (* [done_] is a private worker-side Atomic feeding only the lossy
       progress channel; the deterministic shard/byte/trace counters are
       emitted below, after the join, from the owning domain. *)
    let done_ = Atomic.make 0 in
    let results =
      List.filter_map Fun.id
        (Parallel.map_chunks ~jobs:c.Ctx.jobs ~chunk:1
           ~map:(fun _ chunk ->
             let i = chunk.(0) in
             let r =
               match Tracestore.Reader.read_shard reader i with
               | None -> None
               | Some records ->
                   Some (f i (Array.map (Leakage.of_record ~n:m.Tracestore.n) records))
             in
             if Obs.enabled obs then
               Obs.progress ~total:shards obs "shards" (1 + Atomic.fetch_and_add done_ 1);
             r)
           idx)
    in
    if Obs.enabled obs then begin
      let bytes = ref 0 and traces = ref 0 in
      for i = 0 to shards - 1 do
        let e = Tracestore.Reader.entry reader i in
        bytes := !bytes + e.Tracestore.bytes;
        traces := !traces + e.Tracestore.count
      done;
      Obs.count obs "tracestore.shards" shards;
      Obs.count obs "tracestore.bytes" !bytes;
      Obs.count obs "tracestore.traces" !traces
    end;
    results

  let extract ?ctx ?jobs reader ~samples ~known =
    let c = Ctx.resolve ?ctx ?jobs () in
    let samples = Array.of_list samples in
    let pieces =
      map_shards ~ctx:c reader (fun _ traces ->
          ( Array.map
              (fun (t : Leakage.trace) -> Array.map (fun s -> t.samples.(s)) samples)
              traces,
            Array.map known traces ))
    in
    ( Array.concat (List.map fst pieces),
      Array.concat (List.map snd pieces) )

  let rank ?ctx ?jobs ?backend reader ~parts ~known ~top candidates =
    let c = Ctx.resolve ?ctx ?jobs ?backend () in
    Obs.span c.Ctx.obs "dema.stream.rank"
      ~fields:[ ("shards", Obs.Int (Tracestore.Reader.shard_count reader)) ]
      (fun () ->
        let traces, ks =
          extract ~ctx:c reader ~samples:(List.map fst parts) ~known
        in
        let narrow_parts = List.mapi (fun i (_, model) -> (i, model)) parts in
        rank ~ctx:c ~traces ~parts:narrow_parts ~known:ks ~top candidates)

  let evolution ?ctx ?jobs reader ~sample ~model ~known ~guess =
    let c = Ctx.resolve ?ctx ?jobs () in
    if Tracestore.Reader.total_traces reader = 0 then
      failwith "Dema.Stream.evolution: store holds no traces (empty campaign)";
    let per_shard =
      map_shards ~ctx:c reader (fun _ traces ->
          let acc = Stats.Welford.Cov.create () in
          Array.iter
            (fun (t : Leakage.trace) ->
              Stats.Welford.Cov.add acc
                (float_of_int (Bitops.popcount (model guess (known t))))
                t.samples.(sample))
            traces;
          acc)
    in
    let _, checkpoints =
      List.fold_left
        (fun (acc, out) shard_acc ->
          let acc = Stats.Welford.Cov.merge acc shard_acc in
          ( acc,
            (Stats.Welford.Cov.count acc, Stats.Welford.Cov.correlation acc) :: out ))
        (Stats.Welford.Cov.create (), [])
        per_shard
    in
    List.rev checkpoints
end

let corr_time ?ctx ?backend ~traces ~model ~known ~guesses () =
  let c = Ctx.resolve ?ctx ?backend () in
  Obs.span c.Ctx.obs "dema.corr_time"
    ~fields:
      [
        ("guesses", Obs.Int (Array.length guesses));
        ("backend", Obs.Str (backend_name c.Ctx.backend));
      ]
    (fun () ->
      match c.Ctx.backend with
      | Stats.Pearson.Batch.Scalar ->
          let hyps = Array.map (hyp_vector ~model ~known) guesses in
          Stats.Pearson.corr_matrix ~traces ~hyps
      | Stats.Pearson.Batch.Batched ->
          let blk =
            Hypothesis.Block.create ~rows:(Array.length guesses)
              ~cols:(Array.length known)
          in
          let hb = Hypothesis.Block.fill blk ~model ~known guesses in
          Stats.Pearson.Batch.corr_matrix_blocked ~traces hb)

let evolution ~traces ~sample ~model ~known ~guess ~step =
  let hyp = hyp_vector ~model ~known guess in
  Stats.Pearson.evolution ~traces ~hyp ~sample ~step
