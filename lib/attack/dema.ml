type scored = { guess : int; corr : float }

(* Strict total order on scored candidates: higher score first, equal
   scores broken by the smaller guess value.  The tie-break is what makes
   top-k selection independent of enumeration order — the paper's
   mantissa sweeps produce *exactly* tied alias classes, so without it
   the returned ranking depends on how the candidate sequence happens to
   be ordered (and chunked parallel sweeps would be nondeterministic). *)
let compare_scored a b =
  match Float.compare b.corr a.corr with
  | 0 -> compare a.guess b.guess
  | c -> c

(* Streaming top-k accumulator under {!compare_scored}, kept worst-first
   so eviction inspects the head.  Selection under a strict total order
   is a pure function of the candidate multiset: processing order,
   chunking and merge order cannot change the result. *)
module Topk = struct
  type t = { top : int; mutable size : int; mutable worst_first : scored list }

  let create top = { top; size = 0; worst_first = [] }
  let cmp_worst_first a b = compare_scored b a

  let add t s =
    if t.top > 0 then begin
      if t.size < t.top then begin
        t.worst_first <- List.merge cmp_worst_first [ s ] t.worst_first;
        t.size <- t.size + 1
      end
      else
        match t.worst_first with
        | worst :: rest when compare_scored s worst < 0 ->
            t.worst_first <- List.merge cmp_worst_first [ s ] rest
        | _ -> ()
    end

  let merge into t =
    List.iter (add into) t.worst_first;
    into

  let to_list t = List.rev t.worst_first
end

(* Candidates per unit of work distribution.  Scoring one candidate costs
   O(parts x traces) floating-point work (tens of thousands of ops at
   realistic trace counts), so ~512 candidates amortise the chunk
   hand-off far below the noise floor while still load-balancing the
   2^25-candidate enumerations of Section III-C. *)
let sweep_chunk = 512

let rank_scores ?ctx ?jobs ~score ~top candidates =
  let c = Ctx.resolve ?ctx ?jobs () in
  Topk.to_list
    (Parallel.map_reduce_chunks ~jobs:c.Ctx.jobs ~chunk:sweep_chunk
       ~map:(fun guesses ->
         let t = Topk.create top in
         Array.iter (fun g -> Topk.add t { guess = g; corr = score g }) guesses;
         t)
       ~reduce:Topk.merge ~init:(Topk.create top) candidates)

let rank_block_scores ?ctx ?jobs ~score_block ~top candidates =
  let c = Ctx.resolve ?ctx ?jobs () in
  Topk.to_list
    (Parallel.map_reduce_chunks ~jobs:c.Ctx.jobs ~chunk:sweep_chunk
       ~map:(fun guesses ->
         let scores = score_block guesses in
         let t = Topk.create top in
         Array.iteri (fun i g -> Topk.add t { guess = g; corr = scores.(i) }) guesses;
         t)
       ~reduce:Topk.merge ~init:(Topk.create top) candidates)

let hyp_vector ~model ~known guess =
  Array.map (fun y -> float_of_int (Bitops.popcount (model guess y))) known

let backend_name = function
  | Stats.Pearson.Batch.Scalar -> "scalar"
  | Stats.Pearson.Batch.Batched -> "batched"

(* Resolved hypothesis source over one segment of known operands: a
   split model becomes a precomputed per-trace table plus its integer
   evaluator (built once per sweep, on the owning domain, shared
   read-only); a plain model becomes a closure over the segment.  Both
   feed {!Stats.Pearson.Batch.Fused} with exactly [hyp_vector]'s
   intermediates, so the choice never changes a result. *)
type seg_src =
  | Tab of int array * (int -> int -> int)
  | App of (int -> int -> int)  (* guess -> segment-local trace -> intermediate *)

let seg_src model known =
  match model with
  | Hypothesis.Model.Split (prep, eval) -> Tab (Array.map prep known, eval)
  | Hypothesis.Model.Fn f -> App (fun g i -> f g (Array.unsafe_get known i))

let seg_fold acc src ~cols ~len guesses =
  match src with
  | Tab (prepped, eval) ->
      Stats.Pearson.Batch.Fused.fold_split acc ~eval ~guesses ~prepped ~cols ~len
  | App f ->
      Stats.Pearson.Batch.Fused.fold acc
        ~gen:(fun r i -> f (Array.unsafe_get guesses r) i)
        ~cols ~len

(* Consecutive parts sharing one model value (physical equality) score
   several columns from a single generated hypothesis stream — the
   hoisted refill.  Grouping preserves part order, so the per-guess
   score accumulation stays the scalar fold's addition sequence. *)
let group_parts parts =
  let rec go = function
    | [] -> []
    | (s, m) :: rest ->
        let rec take acc = function
          | (s', m') :: tl when m' == m -> take (s' :: acc) tl
          | tl -> (List.rev acc, tl)
        in
        let same, tl = take [ s ] rest in
        (m, Array.of_list same) :: go tl
  in
  go parts

let rank ?ctx ?jobs ?backend ~traces ~parts ~known ~top candidates =
  let c = Ctx.resolve ?ctx ?jobs ?backend () in
  let obs = c.Ctx.obs in
  let d = Array.length traces in
  let nparts = List.length parts in
  let run () =
    (* Guesses are scored on worker domains; the count accumulates in a
       private Atomic and is emitted once, after the join, from the
       owning domain (the Obs determinism contract). *)
    let scored = if Obs.enabled obs then Some (Atomic.make 0) else None in
    let tick n = match scored with Some a -> ignore (Atomic.fetch_and_add a n) | None -> () in
    let result =
      match c.Ctx.backend with
      | Stats.Pearson.Batch.Scalar ->
          (* column statistics are a per-sweep invariant: computed once
             here, shared read-only by every guess on every domain *)
          let cols =
            List.map
              (fun (s, model) ->
                (Stats.Pearson.column_stats traces s, Hypothesis.Model.apply model))
              parts
          in
          let score guess =
            tick 1;
            List.fold_left
              (fun acc (col, model) ->
                acc
                +. Float.abs
                     (Stats.Pearson.corr_with col (hyp_vector ~model ~known guess)))
              0. cols
          in
          rank_scores ~ctx:c ~score ~top candidates
      | Stats.Pearson.Batch.Batched ->
          (* Fused sweep: no hypothesis block is ever materialised.  The
             per-sweep invariants — column statistics and, for split
             models, the prep table over the known operands — are built
             once under "dema.prep"; each work chunk then runs one fused
             kernel pass per part group, generating intermediates on the
             fly inside the register tiles.  Scores accumulate per guess
             in part order, exactly like the scalar fold, so every total
             is bit-identical. *)
          let groups =
            Obs.span ~level:Obs.Debug obs "dema.prep" (fun () ->
                List.map
                  (fun (m, samples) ->
                    ( seg_src m known,
                      Array.map (fun s -> Stats.Pearson.column_stats traces s) samples
                    ))
                  (group_parts parts))
          in
          let score_block guesses =
            let g = Array.length guesses in
            tick g;
            let scores = Array.make g 0. in
            List.iter
              (fun (src, stats) ->
                let acc =
                  Stats.Pearson.Batch.Fused.create ~rows:g ~ncols:(Array.length stats)
                in
                let cols = Array.map (fun cs -> cs.Stats.Pearson.col) stats in
                seg_fold acc src ~cols ~len:d guesses;
                Array.iteri
                  (fun ci cs ->
                    let rs =
                      Stats.Pearson.Batch.Fused.corr acc ~index:ci ~n:d
                        ~sum_t:cs.Stats.Pearson.sum ~var_t:cs.Stats.Pearson.var_n
                    in
                    for i = 0 to g - 1 do
                      scores.(i) <- scores.(i) +. Float.abs rs.(i)
                    done)
                  stats)
              groups;
            scores
          in
          Obs.span ~level:Obs.Debug obs "dema.score" (fun () ->
              rank_block_scores ~ctx:c ~score_block ~top candidates)
    in
    (match scored with
    | Some a ->
        let n = Atomic.get a in
        Obs.count obs "dema.guesses" n;
        (* one correlation = ~6 flops/trace (centre, multiply-accumulate,
           normalise amortised); a per-sweep order-of-magnitude estimate *)
        Obs.gauge obs "dema.flops_est"
          (float_of_int n *. float_of_int nparts *. 6. *. float_of_int d)
    | None -> ());
    result
  in
  if Obs.enabled obs then
    Obs.span obs "dema.rank"
      ~fields:
        [
          ("traces", Obs.Int d);
          ("parts", Obs.Int nparts);
          ("top", Obs.Int top);
          ("backend", Obs.Str (backend_name c.Ctx.backend));
          ("jobs", Obs.Int c.Ctx.jobs);
        ]
      run
  else run ()

let rank_absolute ?ctx ?jobs ?backend ~traces ~parts ~known ~top ~alpha ~baseline
    candidates =
  let c = Ctx.resolve ?ctx ?jobs ?backend () in
  let obs = c.Ctx.obs in
  let d = Array.length traces in
  let run () =
    let scored = if Obs.enabled obs then Some (Atomic.make 0) else None in
    let tick n = match scored with Some a -> ignore (Atomic.fetch_and_add a n) | None -> () in
    let result =
      match c.Ctx.backend with
      | Stats.Pearson.Batch.Scalar ->
          let cols =
            List.map
              (fun (s, model) ->
                (Array.map (fun t -> t.(s)) traces, Hypothesis.Model.apply model))
              parts
          in
          let score guess =
            tick 1;
            let err = ref 0. in
            List.iter
              (fun (col, model) ->
                for i = 0 to d - 1 do
                  let pred =
                    baseline
                    +. (alpha *. float_of_int (Bitops.popcount (model guess known.(i))))
                  in
                  let r = col.(i) -. pred in
                  err := !err +. (r *. r)
                done)
              cols;
            -. !err /. float_of_int d
          in
          rank_scores ~ctx:c ~score ~top candidates
      | Stats.Pearson.Batch.Batched ->
          (* Same additions in the same (part, trace) order as the scalar
             arm, one running error per guess row — bit-identical scores;
             split models additionally skip the per-guess operand digest
             via the per-sweep prep table. *)
          let cols =
            List.map
              (fun (s, model) ->
                (Array.map (fun t -> t.(s)) traces, seg_src model known))
              parts
          in
          let score_block guesses =
            let g = Array.length guesses in
            tick g;
            let err = Array.make g 0. in
            List.iter
              (fun (col, src) ->
                let gen =
                  match src with
                  | Tab (prepped, eval) ->
                      fun gu i -> eval gu (Array.unsafe_get prepped i)
                  | App f -> f
                in
                for r = 0 to g - 1 do
                  let gu = Array.unsafe_get guesses r in
                  let e = ref (Array.unsafe_get err r) in
                  for i = 0 to d - 1 do
                    let pred =
                      baseline +. (alpha *. float_of_int (Bitops.popcount (gen gu i)))
                    in
                    let rr = Array.unsafe_get col i -. pred in
                    e := !e +. (rr *. rr)
                  done;
                  Array.unsafe_set err r !e
                done)
              cols;
            Array.map (fun e -> -. e /. float_of_int d) err
          in
          rank_block_scores ~ctx:c ~score_block ~top candidates
    in
    (match scored with
    | Some a -> Obs.count obs "dema.guesses" (Atomic.get a)
    | None -> ());
    result
  in
  Obs.span obs "dema.rank_absolute"
    ~fields:
      [
        ("traces", Obs.Int d);
        ("top", Obs.Int top);
        ("backend", Obs.Str (backend_name c.Ctx.backend));
      ]
    run

(* ---- streaming engine over an on-disk trace store ----

   Everything below reads a Tracestore campaign one shard at a time:
   shards are decoded on the Parallel domain pool (one shard per work
   unit, so at most [jobs] decoded shards are ever live) and their
   per-shard results are combined in shard order.  Column extraction is
   arithmetic-free, so the assembled columns are byte-for-byte the ones
   the in-memory path sees and every ranking below is bit-identical to
   its in-memory counterpart at every [jobs]; the evolution path merges
   Welford/Chan accumulators in shard order, deterministic at every
   [jobs] and equal to a prefix rescan up to floating-point
   reassociation. *)
module Stream = struct
  let check_meta reader =
    let m = Tracestore.Reader.meta reader in
    if m.Tracestore.width <> m.Tracestore.n * Leakage.events_per_coeff then
      failwith
        (Printf.sprintf
           "Dema.Stream: store width %d does not match n = %d signing traces (want %d)"
           m.Tracestore.width m.Tracestore.n
           (m.Tracestore.n * Leakage.events_per_coeff));
    m

  let map_shards ?ctx ?jobs ?(on_corrupt = `Fail) ?(prefetch = true) reader f =
    let c = Ctx.resolve ?ctx ?jobs () in
    let obs = c.Ctx.obs in
    let m = check_meta reader in
    let shards = Tracestore.Reader.shard_count reader in
    (* [done_] and [skipped] are private worker-side Atomics; [done_]
       feeds only the lossy progress channel and the deterministic
       shard/byte/trace/skip counters are emitted below, after the join,
       from the owning domain. *)
    let done_ = Atomic.make 0 in
    let skipped = Atomic.make 0 in
    let fetch i =
      match Tracestore.Reader.read_shard reader i with
      | Some records -> Some (Array.map (Leakage.of_record ~n:m.Tracestore.n) records)
      | None -> (
          (* the reader's [`Skip] policy swallowed a corrupt shard; a
             silently shrunken campaign skews every downstream statistic,
             so losing it must be loud unless the caller opted in *)
          match on_corrupt with
          | `Fail ->
              failwith
                (Printf.sprintf
                   "Dema.Stream: shard %d is corrupt or unreadable; pass \
                    ~on_corrupt:`Skip to drop it from the campaign"
                   i)
          | `Skip ->
              Atomic.incr skipped;
              None)
      | exception Failure msg -> (
          match on_corrupt with
          | `Fail -> failwith msg
          | `Skip ->
              Atomic.incr skipped;
              None)
    in
    let progress () =
      if Obs.enabled obs then
        Obs.progress ~total:shards obs "shards" (1 + Atomic.fetch_and_add done_ 1)
    in
    let results =
      if c.Ctx.jobs = 1 && prefetch && shards > 1 then begin
        (* single-job pipeline: a helper domain reads and decodes shard
           i+1 while the owner runs [f] on shard i, overlapping IO with
           scoring.  Results are consumed strictly in shard order, so the
           outcome is the sequential one. *)
        let out = ref [] in
        let next = ref (Some (Domain.spawn (fun () -> fetch 0))) in
        Fun.protect
          ~finally:(fun () ->
            match !next with
            | Some dm -> ( try ignore (Domain.join dm) with _ -> ())
            | None -> ())
          (fun () ->
            for i = 0 to shards - 1 do
              let cur = Domain.join (Option.get !next) in
              next :=
                if i + 1 < shards then Some (Domain.spawn (fun () -> fetch (i + 1)))
                else None;
              (match cur with
              | Some traces -> out := f i traces :: !out
              | None -> ());
              progress ()
            done);
        List.rev !out
      end
      else
        List.filter_map Fun.id
          (Parallel.map_chunks ~jobs:c.Ctx.jobs ~chunk:1
             ~map:(fun _ chunk ->
               let i = chunk.(0) in
               let r = Option.map (f i) (fetch i) in
               progress ();
               r)
             (Seq.init shards Fun.id))
    in
    if Obs.enabled obs then begin
      let bytes = ref 0 and traces = ref 0 in
      for i = 0 to shards - 1 do
        let e = Tracestore.Reader.entry reader i in
        bytes := !bytes + e.Tracestore.bytes;
        traces := !traces + e.Tracestore.count
      done;
      Obs.count obs "tracestore.shards" shards;
      Obs.count obs "tracestore.bytes" !bytes;
      Obs.count obs "tracestore.traces" !traces;
      let sk = Atomic.get skipped in
      if sk > 0 then Obs.count obs "dema.shards_skipped" sk
    end;
    results

  let extract ?ctx ?jobs ?on_corrupt ?prefetch reader ~samples ~known =
    let c = Ctx.resolve ?ctx ?jobs () in
    let samples = Array.of_list samples in
    let pieces =
      map_shards ~ctx:c ?on_corrupt ?prefetch reader (fun _ traces ->
          ( Array.map
              (fun (t : Leakage.trace) -> Array.map (fun s -> t.samples.(s)) samples)
              traces,
            Array.map known traces ))
    in
    ( Array.concat (List.map fst pieces),
      Array.concat (List.map snd pieces) )

  (* Streaming rank never materialises the campaign: each shard yields a
     per-part column segment plus its known operands, global column
     moments come from one sequential pass over the segments in shard
     order (the very additions [column_stats] makes on the concatenated
     column), and both backends then score the segments in shard order —
     the scalar arm with running corr_with accumulators, the batched arm
     by folding each part group's Fused accumulator across segments.
     Every addition lands in the same accumulator in the same global
     trace order as the in-memory sweep, so results are bit-identical to
     [Dema.rank] on the extracted campaign at every [jobs] and backend. *)
  let rank ?ctx ?jobs ?backend ?on_corrupt ?prefetch reader ~parts ~known ~top
      candidates =
    let c = Ctx.resolve ?ctx ?jobs ?backend () in
    let obs = c.Ctx.obs in
    let run () =
      let samples = Array.of_list (List.map fst parts) in
      let nsamp = Array.length samples in
      let pieces =
        Obs.span ~level:Obs.Debug obs "dema.stream.extract" (fun () ->
            Array.of_list
              (map_shards ~ctx:c ?on_corrupt ?prefetch reader (fun _ traces ->
                   let pd = Array.length traces in
                   ( Array.init nsamp (fun j ->
                         let s = samples.(j) in
                         Array.init pd (fun i -> traces.(i).Leakage.samples.(s))),
                     Array.map known traces ))))
      in
      let total_d = Array.fold_left (fun a (_, ks) -> a + Array.length ks) 0 pieces in
      let nf = float_of_int total_d in
      let scored = if Obs.enabled obs then Some (Atomic.make 0) else None in
      let tick n = match scored with Some a -> ignore (Atomic.fetch_and_add a n) | None -> () in
      (* whole-campaign column moments, accumulated segment by segment in
         shard order — bit-identical to [column_stats] on the
         concatenated column *)
      let stats =
        Array.init nsamp (fun j ->
            let s = ref 0. and ss = ref 0. in
            Array.iter
              (fun (cols, _) ->
                let col = cols.(j) in
                for i = 0 to Array.length col - 1 do
                  let v = Array.unsafe_get col i in
                  s := !s +. v;
                  ss := !ss +. (v *. v)
                done)
              pieces;
            (!s, !ss -. (!s *. !s /. nf)))
      in
      let result =
        match c.Ctx.backend with
        | Stats.Pearson.Batch.Scalar ->
            let models =
              Array.of_list (List.map (fun (_, m) -> Hypothesis.Model.apply m) parts)
            in
            let score guess =
              tick 1;
              let acc = ref 0. in
              for j = 0 to nsamp - 1 do
                let model = models.(j) in
                let sh = ref 0. and shh = ref 0. and sht = ref 0. in
                Array.iter
                  (fun (cols, ks) ->
                    let col = cols.(j) in
                    for i = 0 to Array.length ks - 1 do
                      let x = float_of_int (Bitops.popcount (model guess ks.(i))) in
                      sh := !sh +. x;
                      shh := !shh +. (x *. x);
                      sht := !sht +. (x *. Array.unsafe_get col i)
                    done)
                  pieces;
                let sum_t, var_t = stats.(j) in
                let vh = !shh -. (!sh *. !sh /. nf) in
                let cov = !sht -. (!sh *. sum_t /. nf) in
                let r =
                  if vh <= 0. || var_t <= 0. then 0. else cov /. sqrt (vh *. var_t)
                in
                acc := !acc +. Float.abs r
              done;
              !acc
            in
            rank_scores ~ctx:c ~score ~top candidates
        | Stats.Pearson.Batch.Batched ->
            let groups =
              Obs.span ~level:Obs.Debug obs "dema.prep" (fun () ->
                  List.map
                    (fun (m, js) ->
                      (js, Array.map (fun (_, ks) -> seg_src m ks) pieces))
                    (group_parts (List.mapi (fun j (_, m) -> (j, m)) parts)))
            in
            let score_block guesses =
              let g = Array.length guesses in
              tick g;
              let scores = Array.make g 0. in
              List.iter
                (fun (js, srcs) ->
                  let acc =
                    Stats.Pearson.Batch.Fused.create ~rows:g ~ncols:(Array.length js)
                  in
                  Array.iteri
                    (fun pi (cols, ks) ->
                      seg_fold acc srcs.(pi)
                        ~cols:(Array.map (fun j -> cols.(j)) js)
                        ~len:(Array.length ks) guesses)
                    pieces;
                  Array.iteri
                    (fun ci j ->
                      let sum_t, var_t = stats.(j) in
                      let rs =
                        Stats.Pearson.Batch.Fused.corr acc ~index:ci ~n:total_d
                          ~sum_t ~var_t
                      in
                      for i = 0 to g - 1 do
                        scores.(i) <- scores.(i) +. Float.abs rs.(i)
                      done)
                    js)
                groups;
              scores
            in
            Obs.span ~level:Obs.Debug obs "dema.score" (fun () ->
                rank_block_scores ~ctx:c ~score_block ~top candidates)
      in
      (match scored with
      | Some a -> Obs.count obs "dema.guesses" (Atomic.get a)
      | None -> ());
      result
    in
    Obs.span obs "dema.stream.rank"
      ~fields:
        [
          ("shards", Obs.Int (Tracestore.Reader.shard_count reader));
          ("backend", Obs.Str (backend_name c.Ctx.backend));
        ]
      run

  let evolution ?ctx ?jobs ?on_corrupt ?prefetch reader ~sample ~model ~known ~guess =
    let c = Ctx.resolve ?ctx ?jobs () in
    if Tracestore.Reader.total_traces reader = 0 then
      failwith "Dema.Stream.evolution: store holds no traces (empty campaign)";
    let per_shard =
      map_shards ~ctx:c ?on_corrupt ?prefetch reader (fun _ traces ->
          let acc = Stats.Welford.Cov.create () in
          Array.iter
            (fun (t : Leakage.trace) ->
              Stats.Welford.Cov.add acc
                (float_of_int (Bitops.popcount (model guess (known t))))
                t.samples.(sample))
            traces;
          acc)
    in
    let _, checkpoints =
      List.fold_left
        (fun (acc, out) shard_acc ->
          let acc = Stats.Welford.Cov.merge acc shard_acc in
          ( acc,
            (Stats.Welford.Cov.count acc, Stats.Welford.Cov.correlation acc) :: out ))
        (Stats.Welford.Cov.create (), [])
        per_shard
    in
    List.rev checkpoints
end

let corr_time ?ctx ?backend ~traces ~model ~known ~guesses () =
  let c = Ctx.resolve ?ctx ?backend () in
  Obs.span c.Ctx.obs "dema.corr_time"
    ~fields:
      [
        ("guesses", Obs.Int (Array.length guesses));
        ("backend", Obs.Str (backend_name c.Ctx.backend));
      ]
    (fun () ->
      match c.Ctx.backend with
      | Stats.Pearson.Batch.Scalar ->
          let hyps = Array.map (hyp_vector ~model ~known) guesses in
          Stats.Pearson.corr_matrix ~traces ~hyps
      | Stats.Pearson.Batch.Batched ->
          let blk =
            Hypothesis.Block.create ~rows:(Array.length guesses)
              ~cols:(Array.length known)
          in
          let hb = Hypothesis.Block.fill blk ~model ~known guesses in
          Stats.Pearson.Batch.corr_matrix_blocked ~traces hb)

let evolution ~traces ~sample ~model ~known ~guess ~step =
  let hyp = hyp_vector ~model ~known guess in
  Stats.Pearson.evolution ~traces ~hyp ~sample ~step
