type t = {
  jobs : int;
  backend : Stats.Pearson.Batch.backend;
  obs : Obs.t;
}

let default () =
  {
    jobs = Parallel.default_jobs ();
    backend = Stats.Pearson.Batch.default_backend ();
    obs = Obs.null;
  }

let make ?jobs ?backend ?obs () =
  let d = default () in
  {
    jobs = Parallel.resolve jobs;
    backend = Stats.Pearson.Batch.resolve backend;
    obs = Option.value obs ~default:d.obs;
  }

let of_env () =
  let d = default () in
  let jobs =
    match Sys.getenv_opt "FD_JOBS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some j when j >= 1 -> j
        | _ -> d.jobs)
    | None -> d.jobs
  in
  let backend =
    match Sys.getenv_opt "FD_PEARSON" with
    | Some s -> (
        match String.lowercase_ascii (String.trim s) with
        | "scalar" -> Stats.Pearson.Batch.Scalar
        | "batched" | "blocked" -> Stats.Pearson.Batch.Batched
        | _ -> d.backend)
    | None -> d.backend
  in
  { d with jobs; backend }

let with_jobs jobs t =
  if jobs < 1 then invalid_arg "Ctx.with_jobs: jobs must be >= 1";
  { t with jobs }

let with_backend backend t = { t with backend }
let with_obs obs t = { t with obs }
let sequential t = { t with jobs = 1 }

let resolve ?ctx ?jobs ?backend () =
  let base = match ctx with Some c -> c | None -> default () in
  let jobs = match jobs with Some j -> Parallel.resolve (Some j) | None -> base.jobs in
  let backend = match backend with Some b -> b | None -> base.backend in
  { base with jobs; backend }
