type t = {
  jobs : int;
  backend : Distinguisher.selection;
  obs : Obs.t;
  leakage : [ `Hw | `Hd ];
  on_corrupt : [ `Fail | `Skip ];
  prefetch : bool;
}

let default () =
  {
    jobs = Parallel.default_jobs ();
    backend = Distinguisher.default ();
    obs = Obs.null;
    leakage = `Hw;
    on_corrupt = `Fail;
    prefetch = true;
  }

let make ?jobs ?backend ?distinguisher ?obs ?leakage ?on_corrupt ?prefetch () =
  let d = default () in
  {
    jobs = Parallel.resolve jobs;
    backend =
      (match (distinguisher, backend) with
      | Some sel, _ -> sel
      | None, Some b -> Distinguisher.of_pearson b
      | None, None -> d.backend);
    obs = Option.value obs ~default:d.obs;
    leakage = Option.value leakage ~default:d.leakage;
    on_corrupt = Option.value on_corrupt ~default:d.on_corrupt;
    prefetch = Option.value prefetch ~default:d.prefetch;
  }

let of_env () =
  let d = default () in
  let jobs =
    match Sys.getenv_opt "FD_JOBS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some j when j >= 1 -> j
        | _ -> d.jobs)
    | None -> d.jobs
  in
  let backend =
    match Sys.getenv_opt "FD_PEARSON" with
    | Some s -> (
        match String.lowercase_ascii (String.trim s) with
        | "scalar" -> Distinguisher.Pearson_scalar
        | "batched" | "blocked" -> Distinguisher.Pearson_batched
        | _ -> d.backend)
    | None -> d.backend
  in
  { d with jobs; backend }

let with_jobs jobs t =
  if jobs < 1 then invalid_arg "Ctx.with_jobs: jobs must be >= 1";
  { t with jobs }

let with_backend backend t = { t with backend }
let with_pearson_backend b t = { t with backend = Distinguisher.of_pearson b }
let with_obs obs t = { t with obs }
let with_leakage leakage t = { t with leakage }
let with_on_corrupt on_corrupt t = { t with on_corrupt }
let with_prefetch prefetch t = { t with prefetch }
let sequential t = { t with jobs = 1 }
let kernel t = Distinguisher.kernel t.backend

let resolve ?ctx ?jobs ?backend ?distinguisher () =
  let base = match ctx with Some c -> c | None -> default () in
  let jobs = match jobs with Some j -> Parallel.resolve (Some j) | None -> base.jobs in
  let backend =
    match (distinguisher, backend) with
    | Some sel, _ -> sel
    | None, Some b -> Distinguisher.of_pearson b
    | None, None -> base.backend
  in
  { base with jobs; backend }
