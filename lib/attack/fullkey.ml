type result = {
  f_fft : Fft.t;
  f : int array;
  keypair : Ntru.Ntrugen.keypair option;
}

(* Which multiplications a secret component leaks through, and the known
   operand of each — shared by the fixed driver, the adaptive driver and
   the Target enumerator. *)
let component_muls = function `Re -> [ 0; 3 ] | `Im -> [ 1; 2 ]
let mul_known (re, im) = function 0 | 2 -> re | _ -> im

(* Fan the 2n independent (coefficient, component) attacks across the
   pool; leftover parallelism goes to the candidate sweeps inside.  Each
   task runs under a [Obs.buffered] child context (single-owner, one per
   task) and returns it with its result; the children are drained in
   task order after the join, so the merged event stream is
   deterministic at every [jobs] — the Obs ownership contract. *)
let fan_tasks ~ctx ~n task =
  let obs = ctx.Ctx.obs in
  let tasks = 2 * n in
  let outer = min ctx.Ctx.jobs tasks in
  let inner = max 1 (ctx.Ctx.jobs / max outer 1) in
  let done_ = Atomic.make 0 in
  let results =
    Parallel.map_array ~jobs:outer
      (fun t ->
        let child = Obs.buffered obs in
        let tctx = Ctx.with_obs child (Ctx.with_jobs inner ctx) in
        let k = t lsr 1 in
        let component = if t land 1 = 0 then `Re else `Im in
        let r =
          Obs.span child "fullkey.task"
            ~fields:
              [
                ("coeff", Obs.Int k);
                ("component", Obs.Str (match component with `Re -> "re" | `Im -> "im"));
              ]
            (fun () -> task ~tctx ~coeff:k ~component)
        in
        if Obs.enabled obs then
          Obs.progress ~total:tasks obs "coefficients"
            (1 + Atomic.fetch_and_add done_ 1);
        (r, child))
      (Array.init tasks Fun.id)
  in
  Array.iter (fun (_, child) -> Obs.drain ~into:obs child) results;
  let out = Fft.zero n in
  for k = 0 to n - 1 do
    out.Fft.re.(k) <- fst results.(2 * k);
    out.Fft.im.(k) <- fst results.((2 * k) + 1)
  done;
  out

let recover_f_fft ?ctx ?jobs ?leakage ~traces ~n strategy =
  let c = Ctx.resolve ?ctx ?jobs () in
  Obs.span c.Ctx.obs "fullkey.recover_f_fft"
    ~fields:[ ("n", Obs.Int n); ("jobs", Obs.Int c.Ctx.jobs) ]
  @@ fun () ->
  fan_tasks ~ctx:c ~n (fun ~tctx ~coeff ~component ->
      let views = Recover.views_for traces ~coeff ~component in
      let mul = match component with `Re -> 0 | `Im -> 1 in
      Recover.coefficient ~ctx:tctx ?leakage ~strategy:(strategy ~coeff ~mul)
        views)

let recover_key ?ctx ?jobs ?leakage ~traces ~h strategy =
  let n = Array.length h in
  let f_fft = recover_f_fft ?ctx ?jobs ?leakage ~traces ~n strategy in
  let f = Fft.round_to_int (Fft.ifft f_fft) in
  let keypair = Ntru.Ntrugen.recover_from_f ~n ~f ~h in
  { f_fft; f; keypair }

(* ---- out-of-core variant over a Tracestore campaign ----

   One streaming pass per (coefficient, component) task extracts just
   that task's two 16-sample windows and known operands — O(D) floats —
   then runs the unchanged per-coefficient attack on them.  Extraction
   is arithmetic-free and in shard order, so the views are exactly the
   ones [Recover.views_for] builds from the in-memory corpus and the
   recovered key is bit-identical to [recover_key] at every [jobs];
   peak memory is one decoded shard per domain plus the extracted
   windows, never the whole campaign. *)
let store_views ?on_corrupt ?prefetch ~ctx ~reader ~coeff ~component () =
  let muls = component_muls component in
  let samples =
    List.concat_map
      (fun m ->
        List.init Leakage.events_per_mul (fun i ->
            (coeff * Leakage.events_per_coeff) + (m * Leakage.events_per_mul) + i))
      muls
  in
  let known (t : Leakage.trace) =
    (t.c_fft.Fft.re.(coeff), t.c_fft.Fft.im.(coeff))
  in
  let narrow, ks =
    Dema.Stream.extract ~ctx:(Ctx.sequential ctx) ?on_corrupt ?prefetch reader
      ~samples ~known
  in
  List.mapi
    (fun vi m ->
      let lo = vi * Leakage.events_per_mul in
      {
        Recover.traces =
          Array.map (fun row -> Array.sub row lo Leakage.events_per_mul) narrow;
        known =
          Array.map (fun (re, im) -> match m with 0 | 2 -> re | _ -> im) ks;
      })
    muls

(* ---- adaptive (early-stopping) variant ----

   One single streaming pass over the campaign with 2n live units (vs
   one pass per task above): each batch is decoded once and every
   still-undecided unit extracts its two windows from it, buffers them
   (the prefix its final attack will run on) and folds two incremental
   decision sweeps — low mantissa half on [w00; w10; z1a] over the
   width-25 candidate set (z1a is what breaks the exact shift-alias
   ties of w00/w10) and high half on [w01; w11] over the width-28
   candidates (whose [lo] excludes shift aliases, so no d-dependent
   part is needed).  The unit's reported gap is the {e weaker} of the
   two sweeps' standardised gaps, so a stop certifies both halves
   separated at the spent level.  Once stopped, the unit is retired:
   its buffer stops growing and later batches skip its scoring
   entirely.  The unchanged per-coefficient attack then runs on each
   unit's buffered prefix.

   Determinism: batches arrive in shard order whatever the prefetch
   setting, each unit's sweeps are folded only by its own unit in batch
   order with single-job inner sweeps (unit-level parallelism comes
   from the campaign driver), and decisions run on the owner domain in
   unit order — stop points, winners and the recovered key are
   bit-identical at every [jobs] and backend. *)

let decision_candidates strategy ~coeff ~mul =
  match (strategy ~coeff ~mul : Recover.strategy) with
  | Recover.Exhaustive ->
      invalid_arg
        "Fullkey: ?stop requires a sampled strategy — the exhaustive 2^25 \
         hypothesis space cannot be re-scored at every look"
  | Recover.Eval_sampled { rng; decoys; truth } ->
      (* same rng threading as [Recover.coefficient]: low then high *)
      let xu = Fpr.mantissa truth lor (1 lsl 52) in
      ( Hypothesis.sampled rng ~width:25 ~truth:(xu land ((1 lsl 25) - 1)) ~decoys (),
        Hypothesis.sampled rng ~width:28 ~lo:(1 lsl 27) ~truth:(xu lsr 25) ~decoys ()
      )

type unit_state = {
  u_samples : int array;  (* 32 absolute sample indices, window order *)
  u_muls : int list;
  (* buffered prefix, newest segment first: (D_b x 32 window rows, knowns) *)
  u_segs : (float array array * (Fpr.t * Fpr.t) array) list ref;
  u_low : Fpr.t Dema.Sweep.t;
  u_high : Fpr.t Dema.Sweep.t;
}

let make_unit ~backend strategy ~coeff ~component =
  let muls = component_muls component in
  let samples =
    Array.of_list
      (List.concat_map
         (fun m ->
           List.init Leakage.events_per_mul (fun i ->
               (coeff * Leakage.events_per_coeff) + (m * Leakage.events_per_mul)
               + i))
         muls)
  in
  let mul = match component with `Re -> 0 | `Im -> 1 in
  let low_cands, high_cands = decision_candidates strategy ~coeff ~mul in
  let spread models =
    List.concat_map
      (fun m -> List.map (fun _ -> m) muls)
      models
  in
  {
    u_samples = samples;
    u_muls = muls;
    u_segs = ref [];
    u_low =
      Dema.Sweep.create ~backend
        ~parts:(spread [ Recover.p_w00; Recover.p_w10; Recover.p_z1a ])
        low_cands;
    u_high =
      Dema.Sweep.create ~backend
        ~parts:(spread [ Recover.p_w01; Recover.p_w11 ])
        high_cands;
  }

let unit_fold u (batch : Leakage.trace array) ~coeff =
  let rows =
    Array.map
      (fun (t : Leakage.trace) ->
        Array.map (fun s -> t.Leakage.samples.(s)) u.u_samples)
      batch
  in
  let ks =
    Array.map
      (fun (t : Leakage.trace) ->
        (t.Leakage.c_fft.Fft.re.(coeff), t.Leakage.c_fft.Fft.im.(coeff)))
      batch
  in
  u.u_segs := (rows, ks) :: !(u.u_segs);
  (* per-view known operands and per-(view, label) columns *)
  let kvs =
    Array.of_list
      (List.map (fun m -> Array.map (fun k -> mul_known k m) ks) u.u_muls)
  in
  let nviews = Array.length kvs in
  let col vi lbl =
    let off = (vi * Leakage.events_per_mul) + Recover.sample lbl in
    Array.map (fun row -> Array.unsafe_get row off) rows
  in
  let segs labels =
    Array.concat
      (List.map
         (fun lbl -> Array.init nviews (fun vi -> (col vi lbl, kvs.(vi))))
         labels)
  in
  Dema.Sweep.fold ~jobs:1 u.u_low
    (segs [ Fpr.Mant_w00; Fpr.Mant_w10; Fpr.Mant_z1a ]);
  Dema.Sweep.fold ~jobs:1 u.u_high (segs [ Fpr.Mant_w01; Fpr.Mant_w11 ])

(* The unit separates only when BOTH halves do: report the weaker
   sweep's leaders, so the tester's one-sided gap test certifies the
   minimum of the two standardised gaps. *)
let unit_leaders u =
  let ll = Dema.Sweep.leaders ~jobs:1 u.u_low in
  let lh = Dema.Sweep.leaders ~jobs:1 u.u_high in
  let n = Dema.Sweep.n u.u_low in
  let z (l : Sequential.Campaign.leaders) =
    Stats.Signif.corr_gap_z ~n ~r1:l.best ~r2:l.runner_up
  in
  if z ll <= z lh then ll else lh

let unit_views u =
  let rows = Array.concat (List.rev_map fst !(u.u_segs)) in
  let ks = Array.concat (List.rev_map snd !(u.u_segs)) in
  List.mapi
    (fun vi m ->
      {
        Recover.traces =
          Array.map
            (fun row -> Array.sub row (vi * Leakage.events_per_mul) Leakage.events_per_mul)
            rows;
        known = Array.map (fun k -> mul_known k m) ks;
      })
    u.u_muls

let recover_f_fft_store_adaptive ~ctx:c ~on_corrupt ~prefetch ~stop:spec
    ~max_traces ~stop_report ~reader strategy n =
  let fd =
    Dema.Stream.shard_feed
      ~on_corrupt:(Option.value on_corrupt ~default:c.Ctx.on_corrupt)
      ~prefetch:(Option.value prefetch ~default:c.Ctx.prefetch)
      ?max_traces reader
  in
  let tasks = 2 * n in
  let units =
    Array.init tasks (fun t ->
        let coeff = t lsr 1 in
        let component = if t land 1 = 0 then `Re else `Im in
        make_unit ~backend:(Ctx.kernel c) strategy ~coeff ~component)
  in
  let campaign_units =
    Array.mapi
      (fun t u ->
        let coeff = t lsr 1 in
        {
          Sequential.Campaign.fold = (fun batch -> unit_fold u batch ~coeff);
          leaders = (fun () -> unit_leaders u);
        })
      units
  in
  let results =
    Fun.protect ~finally:fd.Dema.Stream.close (fun () ->
        Sequential.Campaign.run ~jobs:c.Ctx.jobs ~obs:c.Ctx.obs ~spec
          ~total:fd.Dema.Stream.total ~feed:fd.Dema.Stream.next
          ~length:Array.length campaign_units)
  in
  (match stop_report with
  | Some f ->
      f (Sequential.Campaign.summarize ~total:fd.Dema.Stream.total results)
  | None -> ());
  (let sk = fd.Dema.Stream.skipped () in
   if Obs.enabled c.Ctx.obs && sk > 0 then
     Obs.count c.Ctx.obs "dema.shards_skipped" sk);
  (* the unchanged per-coefficient attack, on each unit's buffered prefix *)
  fan_tasks ~ctx:c ~n (fun ~tctx ~coeff ~component ->
      let t = (2 * coeff) + match component with `Re -> 0 | `Im -> 1 in
      let views = unit_views units.(t) in
      let mul = match component with `Re -> 0 | `Im -> 1 in
      Recover.coefficient ~ctx:tctx ~strategy:(strategy ~coeff ~mul) views)

let recover_f_fft_store ?ctx ?jobs ?on_corrupt ?prefetch ?leakage ?stop
    ?max_traces ?stop_report ~reader strategy =
  let c = Ctx.resolve ?ctx ?jobs () in
  let n = (Tracestore.Reader.meta reader).Tracestore.n in
  Obs.span c.Ctx.obs "fullkey.recover_f_fft_store"
    ~fields:
      [
        ("n", Obs.Int n);
        ("jobs", Obs.Int c.Ctx.jobs);
        ("adaptive", Obs.Bool (stop <> None));
      ]
  @@ fun () ->
  match stop with
  | Some spec ->
      (* The adaptive driver's streaming decision sweeps need a d-free
         part set per half; under bus-HD every usable high-half
         transition takes the recovered d, so there is no high sweep to
         decide on.  Mirror the Exhaustive rejection rather than decide
         on a mismatched model. *)
      if leakage = Some `Hd || (leakage = None && c.Ctx.leakage = `Hd) then
        invalid_arg
          "Fullkey: ?stop is not available under `Hd leakage — the streaming \
           decision sweeps have no d-free Hamming-distance part set";
      if Distinguisher.is_profiled c.Ctx.backend then
        invalid_arg
          "Fullkey: ?stop is not available under the profiled distinguisher — \
           the sequential gap testers are correlation statistics";
      recover_f_fft_store_adaptive ~ctx:c ~on_corrupt ~prefetch ~stop:spec
        ~max_traces ~stop_report ~reader strategy n
  | None ->
      fan_tasks ~ctx:c ~n (fun ~tctx ~coeff ~component ->
          let views =
            store_views ?on_corrupt ?prefetch ~ctx:tctx ~reader ~coeff
              ~component ()
          in
          let mul = match component with `Re -> 0 | `Im -> 1 in
          Recover.coefficient ~ctx:tctx ?leakage ~strategy:(strategy ~coeff ~mul)
            views)

let recover_key_store ?ctx ?jobs ?on_corrupt ?prefetch ?leakage ?stop
    ?max_traces ?stop_report ~reader ~h strategy =
  let n = Array.length h in
  let store_n = (Tracestore.Reader.meta reader).Tracestore.n in
  if store_n <> n then
    failwith
      (Printf.sprintf
         "Fullkey.recover_key_store: store holds FALCON-%d traces but the public key \
          is FALCON-%d"
         store_n n);
  let f_fft =
    recover_f_fft_store ?ctx ?jobs ?on_corrupt ?prefetch ?leakage ?stop
      ?max_traces ?stop_report ~reader strategy
  in
  let f = Fft.round_to_int (Fft.ifft f_fft) in
  let keypair = Ntru.Ntrugen.recover_from_f ~n ~f ~h in
  { f_fft; f; keypair }

let count_correct recovered ~truth =
  let n = Fft.length recovered in
  assert (Fft.length truth = n);
  let ok = ref 0 in
  for k = 0 to n - 1 do
    if Fpr.equal recovered.Fft.re.(k) truth.Fft.re.(k) then incr ok;
    if Fpr.equal recovered.Fft.im.(k) truth.Fft.im.(k) then incr ok
  done;
  !ok

let forge ~keypair ~seed msg =
  let sk = Falcon.Scheme.secret_of_keypair keypair in
  Falcon.Scheme.sign ~rng:(Prng.of_seed seed) sk msg
