type result = {
  f_fft : Fft.t;
  f : int array;
  keypair : Ntru.Ntrugen.keypair option;
}

let recover_f_fft ?jobs ~traces ~n strategy =
  let jobs = Parallel.resolve jobs in
  (* Each (coefficient, component) attack is independent given the shared
     read-only trace array: fan the 2n of them out across the pool, and
     give any leftover parallelism to the candidate sweeps inside. *)
  let tasks = 2 * n in
  let outer = min jobs tasks in
  let inner = max 1 (jobs / max outer 1) in
  let recovered =
    Parallel.map_array ~jobs:outer
      (fun t ->
        let k = t lsr 1 in
        if t land 1 = 0 then
          let v_re = Recover.views_for traces ~coeff:k ~component:`Re in
          Recover.coefficient ~jobs:inner ~strategy:(strategy ~coeff:k ~mul:0) v_re
        else
          let v_im = Recover.views_for traces ~coeff:k ~component:`Im in
          Recover.coefficient ~jobs:inner ~strategy:(strategy ~coeff:k ~mul:1) v_im)
      (Array.init tasks Fun.id)
  in
  let out = Fft.zero n in
  for k = 0 to n - 1 do
    out.Fft.re.(k) <- recovered.(2 * k);
    out.Fft.im.(k) <- recovered.((2 * k) + 1)
  done;
  out

let recover_key ?jobs ~traces ~h strategy =
  let n = Array.length h in
  let f_fft = recover_f_fft ?jobs ~traces ~n strategy in
  let f = Fft.round_to_int (Fft.ifft f_fft) in
  let keypair = Ntru.Ntrugen.recover_from_f ~n ~f ~h in
  { f_fft; f; keypair }

(* ---- out-of-core variant over a Tracestore campaign ----

   One streaming pass per (coefficient, component) task extracts just
   that task's two 16-sample windows and known operands — O(D) floats —
   then runs the unchanged per-coefficient attack on them.  Extraction
   is arithmetic-free and in shard order, so the views are exactly the
   ones [Recover.views_for] builds from the in-memory corpus and the
   recovered key is bit-identical to [recover_key] at every [jobs];
   peak memory is one decoded shard per domain plus the extracted
   windows, never the whole campaign. *)
let store_views ~reader ~coeff ~component =
  let muls = match component with `Re -> [ 0; 3 ] | `Im -> [ 1; 2 ] in
  let samples =
    List.concat_map
      (fun m ->
        List.init Leakage.events_per_mul (fun i ->
            (coeff * Leakage.events_per_coeff) + (m * Leakage.events_per_mul) + i))
      muls
  in
  let known (t : Leakage.trace) =
    (t.c_fft.Fft.re.(coeff), t.c_fft.Fft.im.(coeff))
  in
  let narrow, ks = Dema.Stream.extract ~jobs:1 reader ~samples ~known in
  List.mapi
    (fun vi m ->
      let lo = vi * Leakage.events_per_mul in
      {
        Recover.traces =
          Array.map (fun row -> Array.sub row lo Leakage.events_per_mul) narrow;
        known =
          Array.map (fun (re, im) -> match m with 0 | 2 -> re | _ -> im) ks;
      })
    muls

let recover_f_fft_store ?jobs ~reader strategy =
  let n = (Tracestore.Reader.meta reader).Tracestore.n in
  let jobs = Parallel.resolve jobs in
  let tasks = 2 * n in
  let outer = min jobs tasks in
  let inner = max 1 (jobs / max outer 1) in
  let recovered =
    Parallel.map_array ~jobs:outer
      (fun t ->
        let k = t lsr 1 in
        let component = if t land 1 = 0 then `Re else `Im in
        let views = store_views ~reader ~coeff:k ~component in
        Recover.coefficient ~jobs:inner
          ~strategy:(strategy ~coeff:k ~mul:(t land 1))
          views)
      (Array.init tasks Fun.id)
  in
  let out = Fft.zero n in
  for k = 0 to n - 1 do
    out.Fft.re.(k) <- recovered.(2 * k);
    out.Fft.im.(k) <- recovered.((2 * k) + 1)
  done;
  out

let recover_key_store ?jobs ~reader ~h strategy =
  let n = Array.length h in
  let store_n = (Tracestore.Reader.meta reader).Tracestore.n in
  if store_n <> n then
    failwith
      (Printf.sprintf
         "Fullkey.recover_key_store: store holds FALCON-%d traces but the public key \
          is FALCON-%d"
         store_n n);
  let f_fft = recover_f_fft_store ?jobs ~reader strategy in
  let f = Fft.round_to_int (Fft.ifft f_fft) in
  let keypair = Ntru.Ntrugen.recover_from_f ~n ~f ~h in
  { f_fft; f; keypair }

let count_correct recovered ~truth =
  let n = Fft.length recovered in
  assert (Fft.length truth = n);
  let ok = ref 0 in
  for k = 0 to n - 1 do
    if Fpr.equal recovered.Fft.re.(k) truth.Fft.re.(k) then incr ok;
    if Fpr.equal recovered.Fft.im.(k) truth.Fft.im.(k) then incr ok
  done;
  !ok

let forge ~keypair ~seed msg =
  let sk = Falcon.Scheme.secret_of_keypair keypair in
  Falcon.Scheme.sign ~rng:(Prng.of_seed seed) sk msg
