type result = {
  f_fft : Fft.t;
  f : int array;
  keypair : Ntru.Ntrugen.keypair option;
}

(* Fan the 2n independent (coefficient, component) attacks across the
   pool; leftover parallelism goes to the candidate sweeps inside.  Each
   task runs under a [Obs.buffered] child context (single-owner, one per
   task) and returns it with its result; the children are drained in
   task order after the join, so the merged event stream is
   deterministic at every [jobs] — the Obs ownership contract. *)
let fan_tasks ~ctx ~n task =
  let obs = ctx.Ctx.obs in
  let tasks = 2 * n in
  let outer = min ctx.Ctx.jobs tasks in
  let inner = max 1 (ctx.Ctx.jobs / max outer 1) in
  let done_ = Atomic.make 0 in
  let results =
    Parallel.map_array ~jobs:outer
      (fun t ->
        let child = Obs.buffered obs in
        let tctx = Ctx.with_obs child (Ctx.with_jobs inner ctx) in
        let k = t lsr 1 in
        let component = if t land 1 = 0 then `Re else `Im in
        let r =
          Obs.span child "fullkey.task"
            ~fields:
              [
                ("coeff", Obs.Int k);
                ("component", Obs.Str (match component with `Re -> "re" | `Im -> "im"));
              ]
            (fun () -> task ~tctx ~coeff:k ~component)
        in
        if Obs.enabled obs then
          Obs.progress ~total:tasks obs "coefficients"
            (1 + Atomic.fetch_and_add done_ 1);
        (r, child))
      (Array.init tasks Fun.id)
  in
  Array.iter (fun (_, child) -> Obs.drain ~into:obs child) results;
  let out = Fft.zero n in
  for k = 0 to n - 1 do
    out.Fft.re.(k) <- fst results.(2 * k);
    out.Fft.im.(k) <- fst results.((2 * k) + 1)
  done;
  out

let recover_f_fft ?ctx ?jobs ~traces ~n strategy =
  let c = Ctx.resolve ?ctx ?jobs () in
  Obs.span c.Ctx.obs "fullkey.recover_f_fft"
    ~fields:[ ("n", Obs.Int n); ("jobs", Obs.Int c.Ctx.jobs) ]
  @@ fun () ->
  fan_tasks ~ctx:c ~n (fun ~tctx ~coeff ~component ->
      let views = Recover.views_for traces ~coeff ~component in
      let mul = match component with `Re -> 0 | `Im -> 1 in
      Recover.coefficient ~ctx:tctx ~strategy:(strategy ~coeff ~mul) views)

let recover_key ?ctx ?jobs ~traces ~h strategy =
  let n = Array.length h in
  let f_fft = recover_f_fft ?ctx ?jobs ~traces ~n strategy in
  let f = Fft.round_to_int (Fft.ifft f_fft) in
  let keypair = Ntru.Ntrugen.recover_from_f ~n ~f ~h in
  { f_fft; f; keypair }

(* ---- out-of-core variant over a Tracestore campaign ----

   One streaming pass per (coefficient, component) task extracts just
   that task's two 16-sample windows and known operands — O(D) floats —
   then runs the unchanged per-coefficient attack on them.  Extraction
   is arithmetic-free and in shard order, so the views are exactly the
   ones [Recover.views_for] builds from the in-memory corpus and the
   recovered key is bit-identical to [recover_key] at every [jobs];
   peak memory is one decoded shard per domain plus the extracted
   windows, never the whole campaign. *)
let store_views ?on_corrupt ?prefetch ~ctx ~reader ~coeff ~component () =
  let muls = match component with `Re -> [ 0; 3 ] | `Im -> [ 1; 2 ] in
  let samples =
    List.concat_map
      (fun m ->
        List.init Leakage.events_per_mul (fun i ->
            (coeff * Leakage.events_per_coeff) + (m * Leakage.events_per_mul) + i))
      muls
  in
  let known (t : Leakage.trace) =
    (t.c_fft.Fft.re.(coeff), t.c_fft.Fft.im.(coeff))
  in
  let narrow, ks =
    Dema.Stream.extract ~ctx:(Ctx.sequential ctx) ?on_corrupt ?prefetch reader
      ~samples ~known
  in
  List.mapi
    (fun vi m ->
      let lo = vi * Leakage.events_per_mul in
      {
        Recover.traces =
          Array.map (fun row -> Array.sub row lo Leakage.events_per_mul) narrow;
        known =
          Array.map (fun (re, im) -> match m with 0 | 2 -> re | _ -> im) ks;
      })
    muls

let recover_f_fft_store ?ctx ?jobs ?on_corrupt ?prefetch ~reader strategy =
  let c = Ctx.resolve ?ctx ?jobs () in
  let n = (Tracestore.Reader.meta reader).Tracestore.n in
  Obs.span c.Ctx.obs "fullkey.recover_f_fft_store"
    ~fields:[ ("n", Obs.Int n); ("jobs", Obs.Int c.Ctx.jobs) ]
  @@ fun () ->
  fan_tasks ~ctx:c ~n (fun ~tctx ~coeff ~component ->
      let views =
        store_views ?on_corrupt ?prefetch ~ctx:tctx ~reader ~coeff ~component ()
      in
      let mul = match component with `Re -> 0 | `Im -> 1 in
      Recover.coefficient ~ctx:tctx ~strategy:(strategy ~coeff ~mul) views)

let recover_key_store ?ctx ?jobs ?on_corrupt ?prefetch ~reader ~h strategy =
  let n = Array.length h in
  let store_n = (Tracestore.Reader.meta reader).Tracestore.n in
  if store_n <> n then
    failwith
      (Printf.sprintf
         "Fullkey.recover_key_store: store holds FALCON-%d traces but the public key \
          is FALCON-%d"
         store_n n);
  let f_fft = recover_f_fft_store ?ctx ?jobs ?on_corrupt ?prefetch ~reader strategy in
  let f = Fft.round_to_int (Fft.ifft f_fft) in
  let keypair = Ntru.Ntrugen.recover_from_f ~n ~f ~h in
  { f_fft; f; keypair }

let count_correct recovered ~truth =
  let n = Fft.length recovered in
  assert (Fft.length truth = n);
  let ok = ref 0 in
  for k = 0 to n - 1 do
    if Fpr.equal recovered.Fft.re.(k) truth.Fft.re.(k) then incr ok;
    if Fpr.equal recovered.Fft.im.(k) truth.Fft.im.(k) then incr ok
  done;
  !ok

let forge ~keypair ~seed msg =
  let sk = Falcon.Scheme.secret_of_keypair keypair in
  Falcon.Scheme.sign ~rng:(Prng.of_seed seed) sk msg
