(** Unified execution context for the attack pipeline.

    Every tunable that used to ride along as a separately threaded
    optional argument — worker count, Pearson kernel backend, and now
    the observability context — lives in one record that entry points
    accept as [?ctx].  The scattered [?jobs]/[?backend] parameters are
    kept as pass-throughs (an explicit value overrides the
    corresponding [ctx] field), so existing callers compile unchanged
    while new code builds a context once and hands it down the whole
    pipeline. *)

type t = {
  jobs : int;  (** worker domains for [Parallel] sweeps (>= 1) *)
  backend : Stats.Pearson.Batch.backend;  (** Pearson kernel choice *)
  obs : Obs.t;  (** observability context; [Obs.null] by default *)
}

val default : unit -> t
(** The process-wide defaults as of the call: [Parallel.default_jobs]
    (so a CLI's [Parallel.set_default_jobs] is honoured),
    [Stats.Pearson.Batch.default_backend], and [Obs.null].  A function,
    not a constant, because those defaults are mutable. *)

val make :
  ?jobs:int -> ?backend:Stats.Pearson.Batch.backend -> ?obs:Obs.t -> unit -> t
(** {!default} with the given fields overridden.  Raises
    [Invalid_argument] if [jobs < 1]. *)

val of_env : unit -> t
(** {!default}, then override from the environment: [FD_JOBS] (positive
    integer) sets [jobs] and [FD_PEARSON] ([scalar]/[batched]) sets
    [backend].  Malformed values are ignored. *)

val with_jobs : int -> t -> t
val with_backend : Stats.Pearson.Batch.backend -> t -> t
val with_obs : Obs.t -> t -> t

val sequential : t -> t
(** [with_jobs 1], for handing a context to per-task inner work that
    must not nest parallelism. *)

val resolve :
  ?ctx:t -> ?jobs:int -> ?backend:Stats.Pearson.Batch.backend -> unit -> t
(** The idiom for entry points: start from [ctx] (or {!default} when
    omitted) and let an explicit [?jobs]/[?backend] argument override
    the corresponding field.  This is what makes the legacy optional
    parameters and the new context API coexist on one signature. *)
