(** Unified execution context for the attack pipeline.

    Every tunable that used to ride along as a separately threaded
    optional argument — worker count, distinguisher selection,
    observability, and now the leakage family, corrupt-shard policy and
    shard prefetch — lives in one record that entry points accept as
    [?ctx].  [Ctx.t] is the single configuration carrier; the scattered
    [?jobs]/[?backend]/[?leakage]/[?on_corrupt]/[?prefetch] parameters
    on entry points are kept as thin deprecated pass-throughs (an
    explicit value overrides the corresponding [ctx] field), so
    existing callers compile unchanged while new code builds a context
    once with the [with_*] builders and hands it down the whole
    pipeline.

    {b Backend redesign.}  [backend] used to be the Pearson kernel enum
    [Stats.Pearson.Batch.backend]; it is now a first-class
    {!Distinguisher.selection} so the profiled template attack is
    selectable everywhere Pearson is.  The Pearson-typed
    [?backend] optionals (and {!with_pearson_backend}) survive as
    deprecated shims through {!Distinguisher.of_pearson}. *)

type t = {
  jobs : int;  (** worker domains for [Parallel] sweeps (>= 1) *)
  backend : Distinguisher.selection;  (** which distinguisher scores sweeps *)
  obs : Obs.t;  (** observability context; [Obs.null] by default *)
  leakage : [ `Hw | `Hd ];
      (** hypothesis-model family ([Recover.leakage]); [`Hw] by default *)
  on_corrupt : [ `Fail | `Skip ];
      (** streaming corrupt-shard policy; loud [`Fail] by default *)
  prefetch : bool;
      (** single-job shard prefetch in the streaming engine; [true] by
          default *)
}

val default : unit -> t
(** The process-wide defaults as of the call: [Parallel.default_jobs]
    (so a CLI's [Parallel.set_default_jobs] is honoured),
    {!Distinguisher.default} (which honours [FD_PEARSON]), [Obs.null],
    [`Hw], [`Fail], prefetch on.  A function, not a constant, because
    those defaults are mutable. *)

val make :
  ?jobs:int ->
  ?backend:Stats.Pearson.Batch.backend ->
  ?distinguisher:Distinguisher.selection ->
  ?obs:Obs.t ->
  ?leakage:[ `Hw | `Hd ] ->
  ?on_corrupt:[ `Fail | `Skip ] ->
  ?prefetch:bool ->
  unit ->
  t
(** {!default} with the given fields overridden.  [?backend] is the
    deprecated Pearson-typed shim; an explicit [?distinguisher] wins
    over it.  Raises [Invalid_argument] if [jobs < 1]. *)

val of_env : unit -> t
(** {!default}, then override from the environment: [FD_JOBS] (positive
    integer) sets [jobs] and [FD_PEARSON] ([scalar]/[batched]) sets the
    Pearson selection.  Malformed values are ignored. *)

val with_jobs : int -> t -> t
val with_backend : Distinguisher.selection -> t -> t

val with_pearson_backend : Stats.Pearson.Batch.backend -> t -> t
(** Deprecated shim: {!with_backend} through
    {!Distinguisher.of_pearson}. *)

val with_obs : Obs.t -> t -> t
val with_leakage : [ `Hw | `Hd ] -> t -> t
val with_on_corrupt : [ `Fail | `Skip ] -> t -> t
val with_prefetch : bool -> t -> t

val sequential : t -> t
(** [with_jobs 1], for handing a context to per-task inner work that
    must not nest parallelism. *)

val kernel : t -> Stats.Pearson.Batch.backend
(** {!Distinguisher.kernel} of the selection — the Pearson kernel the
    correlation-only stages use under this context. *)

val resolve :
  ?ctx:t ->
  ?jobs:int ->
  ?backend:Stats.Pearson.Batch.backend ->
  ?distinguisher:Distinguisher.selection ->
  unit ->
  t
(** The idiom for entry points: start from [ctx] (or {!default} when
    omitted) and let an explicit [?jobs]/[?backend]/[?distinguisher]
    argument override the corresponding field.  This is what makes the
    deprecated optional parameters and the context API coexist on one
    signature. *)
