type selection =
  | Pearson_scalar
  | Pearson_batched
  | Profiled of Profile.store

let of_pearson = function
  | Stats.Pearson.Batch.Scalar -> Pearson_scalar
  | Stats.Pearson.Batch.Batched -> Pearson_batched

let kernel = function
  | Pearson_scalar -> Stats.Pearson.Batch.Scalar
  | Pearson_batched -> Stats.Pearson.Batch.Batched
  | Profiled _ -> Stats.Pearson.Batch.Scalar

let name = function
  | Pearson_scalar -> "scalar"
  | Pearson_batched -> "batched"
  | Profiled _ -> "profiled"

let names = [ "scalar"; "batched"; "profiled" ]
let is_profiled = function Profiled _ -> true | _ -> false
let default () = of_pearson (Stats.Pearson.Batch.default_backend ())

let resolve ?backend ?distinguisher () =
  match distinguisher with
  | Some d -> d
  | None -> (
      match backend with Some b -> of_pearson b | None -> default ())

module type S = sig
  val name : string

  type 'k state

  val create :
    parts:(int * 'k Hypothesis.Model.t) list -> guesses:int array -> 'k state

  val needs : 'k state -> int list list
  val fold : ?jobs:int -> 'k state -> (float array array * 'k array) array -> unit
  val finalize : ?jobs:int -> 'k state -> float array
end
