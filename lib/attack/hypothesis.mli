(** Hypothesis spaces for the differential attack.

    The paper enumerates all 2^25 guesses for the low mantissa half and
    all 2^27 for the high half on a workstation; this repository supports
    the same exhaustive enumeration ({!exhaustive}, streamed so memory
    stays flat) and, for routine runs on one CPU core, an evaluation
    mode ({!sampled}) whose candidate set contains the true value, its
    complete multiplication-alias class (the exact-tie false positives
    the extend phase cannot distinguish) and uniform random decoys.
    Pearson ranking treats every hypothesis independently, so the sampled
    set exercises the identical extend-and-prune decision logic — see
    DESIGN.md section 2. *)

val shift_aliases : width:int -> ?lo:int -> int -> int list
(** [shift_aliases ~width v] is every [v'] in [\[lo, 2^width)] with
    [v' = v * 2^k] or [v = v' * 2^k] (k >= 1) — the values whose products
    [v' * b] have exactly the Hamming weight of [v * b] for every [b].
    [lo] defaults to 0 (set it to 2^(width-1) for ranges with a fixed
    top bit). *)

val sampled :
  Stats.Rng.t -> width:int -> ?lo:int -> truth:int -> decoys:int -> unit -> int array
(** Evaluation candidate set: [truth], its alias class, single-bit and
    +/-1 neighbours, and [decoys] uniform values in [\[lo, 2^width)];
    deduplicated and shuffled. *)

(** A leakage model as a first-class value.  [apply m guess y] is the
    modelled integer intermediate of a trace whose known operand is [y];
    the predicted leakage is its Hamming weight.

    A {!split} model additionally exposes the factorisation
    [apply g y = eval g (prep y)]: [prep] digests the known operand once
    (bit-slices of its significand, its exponent, a packed tuple...),
    [eval] combines it with the guess using integer arithmetic only.
    The sweep engines precompute [prep] over the known operands once per
    sweep and drive the fused kernel with [eval] on plain [int]s —
    {!fn} models work everywhere but repay the full per-element model
    cost on every guess.  The two forms must agree exactly (integers),
    which makes every backend bit-identical. *)
module Model : sig
  type 'k t =
    | Fn of (int -> 'k -> int)
    | Split of ('k -> int) * (int -> int -> int)

  val fn : (int -> 'k -> int) -> 'k t
  (** Wrap a plain model function. *)

  val split : prep:('k -> int) -> eval:(int -> int -> int) -> 'k t
  (** [split ~prep ~eval] — the caller asserts
      [eval g (prep y) = apply g y] for all inputs. *)

  val apply : 'k t -> int -> 'k -> int
  (** Evaluate on the original operand type. *)

  val contramap : ('j -> 'k) -> 'k t -> 'j t
  (** Precompose the known-operand side (e.g. index into a view's
      operand array); a split model stays split. *)
end

(** Reusable [G x D] hypothesis-block builder feeding the batched
    Pearson kernel ({!Stats.Pearson.Batch}).  One {!fill} replaces [G]
    per-guess [Dema.hyp_vector] allocations with writes into a single
    flat buffer; row [r] holds exactly the floats of
    [hyp_vector ~model ~known guesses.(r)], so batched scoring is
    bit-identical to the scalar sweep. *)
module Block : sig
  type t = Stats.Pearson.Batch.hyp_block

  val create : rows:int -> cols:int -> t
  (** Fresh block with capacity for [rows] guesses of [cols] traces. *)

  val scratch : rows:int -> cols:int -> t
  (** The calling domain's reusable block of that shape — allocated on
      first use, then returned again on every later call from the same
      domain.  Never shared across domains; the caller must overwrite it
      (via {!fill}) before reading. *)

  val fill : t -> model:(int -> 'k -> int) -> known:'k array -> int array -> t
  (** [fill blk ~model ~known guesses] writes the modelled leakage of
      every guess (Hamming weights as floats, one row per guess),
      declares [Array.length guesses] valid rows, and returns [blk].
      Raises [Invalid_argument] if [known] does not match the block's
      columns or there are more guesses than the block's capacity. *)
end

val exhaustive : width:int -> ?lo:int -> unit -> int Seq.t
(** All values of [\[lo, 2^width)], lazily. *)

val count : width:int -> ?lo:int -> unit -> int

val range : lo:int -> hi:int -> int Seq.t
(** All values of [\[lo, hi)], lazily; empty when [hi <= lo].  The
    arbitrary-bounds enumerator for guess spaces that are not power-of-two
    sized (e.g. {!Target} position candidates). *)

val range_count : lo:int -> hi:int -> int
(** [Seq.length (range ~lo ~hi)] without forcing the sequence. *)
