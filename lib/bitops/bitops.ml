(* SWAR popcount on 64-bit words; OCaml has no popcount intrinsic. *)
let popcount64 (x : int64) : int =
  let open Int64 in
  let m1 = 0x5555555555555555L
  and m2 = 0x3333333333333333L
  and m4 = 0x0f0f0f0f0f0f0f0fL
  and h01 = 0x0101010101010101L in
  let x = sub x (logand (shift_right_logical x 1) m1) in
  let x = add (logand x m2) (logand (shift_right_logical x 2) m2) in
  let x = logand (add x (shift_right_logical x 4)) m4 in
  to_int (shift_right_logical (mul x h01) 56)

(* Native-int SWAR popcount: the distinguisher evaluates this once per
   (guess, trace) pair, so it must not round-trip through boxed [Int64]
   (each Int64 operation allocates without flambda).  All masks fit in a
   63-bit int because the argument is non-negative (bits 0..61 only). *)
let m1 = 0x1555555555555555 (* 01 repeated over bits 0..60 *)
let m2 = 0x3333333333333333
let m4 = 0x0f0f0f0f0f0f0f0f
let h01 = 0x0101010101010101

let popcount (x : int) : int =
  assert (x >= 0);
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  (* byte sums aggregate into bits 56..62 of the product: at most 62 set
     bits, so the top byte never overflows into the sign bit *)
  (x * h01) lsr 56

let hamming_distance a b = popcount (a lxor b)

let bit_length (x : int) : int =
  assert (x >= 0);
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + 1) in
  go x 0

let mask w =
  assert (w >= 0 && w <= 62);
  (1 lsl w) - 1

let bits x ~lo ~width = (x lsr lo) land mask width

let parity x = popcount x land 1

let brev x ~bits =
  let r = ref 0 in
  for i = 0 to bits - 1 do
    r := (!r lsl 1) lor ((x lsr i) land 1)
  done;
  !r
