(** Word-level bit utilities shared by the soft-float, the leakage
    simulator and the attack engine.

    Values are OCaml native [int]s (63-bit); every function documents the
    width it assumes.  Hamming weight is the leakage model's primitive. *)

val popcount : int -> int
(** [popcount x] is the number of set bits in the 63-bit value [x].
    [x] must be non-negative.  Allocation-free native-int SWAR — this is
    the per-(guess, trace) primitive of the Pearson sweeps, so it never
    touches boxed [Int64] arithmetic. *)

val popcount64 : int64 -> int
(** Hamming weight of a full 64-bit word. *)

val hamming_distance : int -> int -> int
(** [hamming_distance a b] is [popcount (a lxor b)]. *)

val bit_length : int -> int
(** [bit_length x] is the position of the highest set bit plus one
    (so [bit_length 0 = 0], [bit_length 1 = 1], [bit_length 4 = 3]).
    [x] must be non-negative. *)

val bits : int -> lo:int -> width:int -> int
(** [bits x ~lo ~width] extracts [width] bits of [x] starting at bit
    [lo] (little-endian bit numbering). *)

val mask : int -> int
(** [mask w] is [2^w - 1] for [0 <= w <= 62]. *)

val parity : int -> int
(** [parity x] is [popcount x land 1]. *)

val brev : int -> bits:int -> int
(** [brev x ~bits] reverses the lowest [bits] bits of [x]. *)
